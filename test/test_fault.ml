(* Resilience layer: budgets, fault injection and the degradation ladder.

   The ladder property tests force each rung with armed faults and assert
   the three-part contract: the result is [Ok], replaying its script
   reproduces the new tree, and the static verifier reports zero errors.
   The registry sweep then arms every (point, action) combination and
   asserts that nothing ever escapes [diff_result] uncaught.

   When TREEDIFF_FAULT is set (the `make fault-tests` sweep), only the
   env-sweep suite runs: the armed fault would sabotage the deterministic
   unit tests, and the sweep's whole purpose is to show that an armed fault
   still yields a verified result or a typed error. *)

module Budget = Treediff_util.Budget
module Fault = Treediff_util.Fault
module Exec = Treediff_util.Exec
module Prng = Treediff_util.Prng
module Tree = Treediff_tree.Tree
module Node = Treediff_tree.Node
module Iso = Treediff_tree.Iso
module Diag = Treediff_check.Diag
module Diff = Treediff.Diff
module Config = Treediff.Config
module Treegen = Treediff_workload.Treegen

(* ----------------------------------------------------------------- budget *)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  Alcotest.(check bool) "not limited" false (Budget.is_limited b);
  for _ = 1 to 10_000 do
    Budget.tick b;
    Budget.visit b
  done;
  Alcotest.(check bool) "counts comparisons" true (Budget.comparisons b = 10_000)

let test_budget_comparisons_cap () =
  let b = Budget.make ~max_comparisons:5 () in
  Alcotest.(check bool) "limited" true (Budget.is_limited b);
  let tripped =
    try
      for _ = 1 to 1_000 do
        Budget.tick b
      done;
      None
    with Budget.Exceeded e -> Some e
  in
  match tripped with
  | None -> Alcotest.fail "comparison cap never tripped"
  | Some e ->
    Alcotest.(check bool) "reason" true (e.Budget.reason = Budget.Comparisons);
    Alcotest.(check bool) "at the cap" true (e.Budget.comparisons >= 5)

let test_budget_deadline () =
  (* A deadline in the past: the clock is read at most 256 events later. *)
  let b = Budget.make ~deadline_ms:(-1.0) () in
  let tripped =
    try
      for _ = 1 to 1_000 do
        Budget.tick b
      done;
      false
    with Budget.Exceeded e -> e.Budget.reason = Budget.Deadline
  in
  Alcotest.(check bool) "deadline trips" true tripped;
  (* visits are deadline-only: an expired deadline trips them too *)
  let b = Budget.make ~deadline_ms:(-1.0) () in
  let tripped =
    try
      for _ = 1 to 1_000 do
        Budget.visit b
      done;
      false
    with Budget.Exceeded _ -> true
  in
  Alcotest.(check bool) "visit sees deadline" true tripped

let test_budget_visits_uncapped () =
  (* comparison caps must not throttle visits — the cheap rungs rely on it *)
  let b = Budget.make ~max_comparisons:1 () in
  for _ = 1 to 10_000 do
    Budget.visit b
  done;
  Alcotest.(check bool) "visits counted" true (Budget.visits b = 10_000)

let test_budget_admit () =
  let b = Budget.make ~max_nodes:100 ~max_depth:10 () in
  Budget.admit b ~nodes:100 ~depth:10;
  (try
     Budget.admit b ~nodes:101 ~depth:1;
     Alcotest.fail "node cap not enforced"
   with Budget.Exceeded e ->
     Alcotest.(check bool) "nodes" true (e.Budget.reason = Budget.Nodes));
  try
    Budget.admit b ~nodes:1 ~depth:11;
    Alcotest.fail "depth cap not enforced"
  with Budget.Exceeded e ->
    Alcotest.(check bool) "depth" true (e.Budget.reason = Budget.Depth)

let test_budget_rearm () =
  let b = Budget.make ~max_comparisons:3 () in
  (try
     for _ = 1 to 10 do
       Budget.tick b
     done
   with Budget.Exceeded _ -> ());
  let b' = Budget.rearm b in
  Alcotest.(check bool) "counters reset" true (Budget.comparisons b' = 0);
  Alcotest.(check bool) "still limited" true (Budget.is_limited b');
  (* and the fresh budget enforces the same cap *)
  let tripped =
    try
      for _ = 1 to 10 do
        Budget.tick b'
      done;
      false
    with Budget.Exceeded _ -> true
  in
  Alcotest.(check bool) "cap carried over" true tripped

(* ------------------------------------------------------------------ fault *)

let test_fault_parse () =
  (match Fault.parse_spec "fast_match.lcs:raise" with
  | Ok s ->
    Alcotest.(check string) "point" "fast_match.lcs" s.Fault.point;
    Alcotest.(check bool) "action" true (s.Fault.action = Fault.Raise);
    Alcotest.(check int) "at defaults to 1" 1 s.Fault.at
  | Error e -> Alcotest.fail e);
  (match Fault.parse_spec "edit_gen.*:deadline@3" with
  | Ok s ->
    Alcotest.(check bool) "action" true (s.Fault.action = Fault.Deadline);
    Alcotest.(check int) "at" 3 s.Fault.at
  | Error e -> Alcotest.fail e);
  (match Fault.parse "a:raise,b:overflow@2" with
  | Ok [ a; b ] ->
    Alcotest.(check string) "first" "a" a.Fault.point;
    Alcotest.(check int) "second at" 2 b.Fault.at
  | Ok _ -> Alcotest.fail "expected two specs"
  | Error e -> Alcotest.fail e);
  let bad s =
    match Fault.parse_spec s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted bad spec %S" s)
    | Error _ -> ()
  in
  bad "no-colon";
  bad "p:unknown-action";
  bad ":raise";
  bad "p:raise@0"

let test_fault_fire () =
  let f =
    Fault.create ~specs:[ { Fault.point = "p.q"; action = Fault.Raise; at = 2 } ] ()
  in
  Fault.point f "p.q";
  Alcotest.(check int) "first hit counted, not fired" 1 (Fault.hits f);
  (try
     Fault.point f "p.q";
     Alcotest.fail "second hit should fire"
   with Fault.Injected p -> Alcotest.(check string) "point name" "p.q" p);
  (* sticky: keeps firing after the at-th hit *)
  (try
     Fault.point f "p.q";
     Alcotest.fail "sticky fault should keep firing"
   with Fault.Injected _ -> ());
  Fault.disarm f;
  Fault.point f "p.q" (* disarmed: no-op *);
  (* counters are per registry, not shared: a second registry with the same
     spec starts from zero *)
  let g =
    Fault.create ~specs:[ { Fault.point = "p.q"; action = Fault.Raise; at = 2 } ] ()
  in
  Fault.point g "p.q";
  Alcotest.(check int) "independent counters" 1 (Fault.hits g)

let test_fault_prefix_and_actions () =
  let f =
    Fault.create
      ~specs:[ { Fault.point = "edit_gen.*"; action = Fault.Deadline; at = 1 } ]
      ()
  in
  (try
     Fault.point f "edit_gen.align";
     Alcotest.fail "prefix should match"
   with Budget.Exceeded e ->
     Alcotest.(check bool) "deadline reason" true (e.Budget.reason = Budget.Deadline));
  Fault.point f "fast_match.lcs" (* prefix does not match: no-op *);
  Fault.arm_one f (Some { Fault.point = "x"; action = Fault.Overflow; at = 1 });
  (try
     Fault.point f "x";
     Alcotest.fail "overflow should fire"
   with Budget.Exceeded e ->
     Alcotest.(check bool) "overflow is a comparisons trip" true
       (e.Budget.reason = Budget.Comparisons))

let test_fault_multi () =
  let f =
    Fault.create
      ~specs:
        [
          { Fault.point = "a"; action = Fault.Raise; at = 1 };
          { Fault.point = "b"; action = Fault.Raise; at = 1 };
        ]
      ()
  in
  (try
     Fault.point f "b";
     Alcotest.fail "second armed spec should fire"
   with Fault.Injected p -> Alcotest.(check string) "fired b" "b" p);
  (try
     Fault.point f "a";
     Alcotest.fail "first armed spec should fire"
   with Fault.Injected p -> Alcotest.(check string) "fired a" "a" p);
  Fault.disarm f;
  Alcotest.(check (list string)) "disarmed" []
    (List.map (fun s -> s.Fault.point) (Fault.armed f))

(* ----------------------------------------------------------------- ladder *)

let labels = [| "D"; "P"; "S"; "W" |]

let random_pair rng gen =
  let t1 =
    Treegen.random_labeled rng gen ~max_depth:4 ~max_width:4 ~labels ~vocab:12
  in
  let t2 = Treegen.perturb rng gen t1 in
  (t1, t2)

(* The three-part contract every Ok result must satisfy. *)
let assert_sound ~what t1 t2 (r : Diff.t) =
  let replayed = Diff.apply r t1 in
  if not (Iso.equal replayed t2) then
    Alcotest.fail (what ^ ": replayed script does not reproduce the new tree");
  let errs = Diag.errors (Diff.verify ~config:Config.(with_check false default) r ~t1 ~t2) in
  if errs <> [] then
    Alcotest.fail (what ^ ": verifier errors: " ^ Diag.summary errs)

let test_ladder_no_budget_is_primary () =
  let rng = Prng.create 11 in
  let gen = Tree.gen () in
  let t1, t2 = random_pair rng gen in
  match Diff.diff_result t1 t2 with
  | Error _ -> Alcotest.fail "unbudgeted diff_result failed"
  | Ok r ->
    Alcotest.(check bool) "not degraded" true (r.Diff.degraded = None);
    let reference = Diff.diff t1 t2 in
    Alcotest.(check int) "same script"
      (List.length reference.Diff.script)
      (List.length r.Diff.script)

let test_ladder_comparison_cap_degrades () =
  let rng = Prng.create 23 in
  let gen = Tree.gen () in
  let t1, t2 = random_pair rng gen in
  let exec = Exec.create ~budget:(Budget.make ~max_comparisons:1 ()) () in
  match Diff.diff_result ~exec t1 t2 with
  | Error _ -> Alcotest.fail "ladder should absorb a comparison cap"
  | Ok r ->
    (match r.Diff.degraded with
    | Some _ -> ()
    | None -> Alcotest.fail "expected a degraded rung");
    assert_sound ~what:"degraded" t1 t2 r

(* Force a specific rung with armed faults and run the soundness contract
   over many random pairs.  Sticky faults make every higher rung fail. *)
let force_rung ~seed ~pairs ~specs ~expect () =
  let rng = Prng.create seed in
  for i = 1 to pairs do
    let gen = Tree.gen () in
    let t1, t2 = random_pair rng gen in
    (* a fresh per-pair context: hit counters start at zero each pair *)
    let exec = Exec.create ~faults:(Fault.create ~specs ()) () in
    match Diff.diff_result ~exec t1 t2 with
    | Error f ->
      Alcotest.fail
        (Printf.sprintf "pair %d: rung %s unreachable: %s" i
           (Diff.rung_name expect)
           (match f.Diff.attempts with
           | (n, m) :: _ -> n ^ ": " ^ m
           | [] -> "no attempts"))
    | Ok r ->
      (match r.Diff.degraded with
      | Some rung when rung = expect -> ()
      | Some rung ->
        Alcotest.fail
          (Printf.sprintf "pair %d: expected %s, got %s" i
             (Diff.rung_name expect) (Diff.rung_name rung))
      | None ->
        Alcotest.fail
          (Printf.sprintf "pair %d: fault did not degrade (expected %s)" i
             (Diff.rung_name expect)));
      (* apply/verify run outside the exec: the armed spec cannot fire *)
      assert_sound ~what:(Diff.rung_name expect) t1 t2 r
  done

let raise_at p = { Fault.point = p; action = Fault.Raise; at = 1 }

(* postprocess runs in the primary attempt only (the windowed rung disables
   it), so this fault lands on the windowed rung. *)
let test_ladder_windowed =
  force_rung ~seed:101 ~pairs:200 ~specs:[ raise_at "postprocess.run" ]
    ~expect:Diff.Windowed

(* fast_match runs in the primary and windowed attempts; the keyed rung
   matches by leaf value instead. *)
let test_ladder_keyed =
  force_rung ~seed:202 ~pairs:200
    ~specs:[ raise_at "fast_match.chain" ]
    ~expect:Diff.Keyed

(* with fast_match and keyed dead, the greedy SimHash matcher takes over *)
let test_ladder_approx =
  force_rung ~seed:404 ~pairs:200
    ~specs:[ raise_at "fast_match.chain"; raise_at "keyed.match" ]
    ~expect:Diff.Approx

(* killing every matcher leaves only the delete-all/insert-all rebuild *)
let test_ladder_rebuild =
  force_rung ~seed:303 ~pairs:200
    ~specs:
      [
        raise_at "fast_match.chain"; raise_at "keyed.match";
        raise_at "sim.greedy";
      ]
    ~expect:Diff.Rebuild

(* Every (registry point, action) combination: the outcome must be a
   verified Ok or a typed Error — never an uncaught exception, never a
   wrong-but-silent script. *)
let test_fault_sweep () =
  let rng = Prng.create 77 in
  List.iter
    (fun point ->
      List.iter
        (fun action ->
          let gen = Tree.gen () in
          let t1, t2 = random_pair rng gen in
          let exec =
            Exec.create
              ~faults:
                (Fault.create ~specs:[ { Fault.point = point; action; at = 1 } ] ())
              ()
          in
          let what =
            Printf.sprintf "%s:%s" point (Fault.action_name action)
          in
          (match Diff.diff_result ~exec t1 t2 with
          | Ok r -> assert_sound ~what t1 t2 r
          | Error f ->
            (* typed failure: the cause must reflect the armed action *)
            let ok =
              match (action, f.Diff.cause) with
              | Fault.Raise, Diff.Fault _ -> true
              | (Fault.Deadline | Fault.Overflow), Diff.Budget_exhausted _ ->
                true
              | _ -> false
            in
            if not ok then
              Alcotest.fail (what ^ ": failure cause does not match the fault");
            if f.Diff.attempts = [] then
              Alcotest.fail (what ^ ": no attempt log");
            if f.Diff.flat = [] then
              Alcotest.fail (what ^ ": no flat fallback")))
        [ Fault.Raise; Fault.Deadline; Fault.Overflow ])
    Fault.registry

(* The Zhang-Shasha baseline is outside the ladder but must honor budgets
   and faults as typed errors. *)
let test_zs_budget_and_fault () =
  let rng = Prng.create 55 in
  let gen = Tree.gen () in
  let t1, t2 = random_pair rng gen in
  let exec = Exec.create ~budget:(Budget.make ~deadline_ms:(-1.0) ()) () in
  (match Treediff_zs.Zhang_shasha.distance ~exec t1 t2 with
  | _ -> Alcotest.fail "expired deadline should trip the baseline"
  | exception Budget.Exceeded e ->
    Alcotest.(check string) "phase" "zs" e.Budget.phase);
  let exec =
    Exec.create
      ~faults:(Fault.create ~specs:[ raise_at "zs.forest_dist" ] ())
      ()
  in
  match Treediff_zs.Zhang_shasha.distance ~exec t1 t2 with
  | _ -> Alcotest.fail "armed fault should fire in forest_dist"
  | exception Fault.Injected _ -> ()

(* ------------------------------------------------------- deep-tree safety *)

let path_tree gen depth =
  (* built iteratively: leaf first, then wrap -- the recursion lives in the
     library code under test, not here *)
  let t = ref (Tree.leaf gen "S" "bottom") in
  for _ = 2 to depth do
    t := Tree.node gen "S" [ !t ]
  done;
  !t

let test_deep_path_tree () =
  let depth = 100_000 in
  let gen = Tree.gen () in
  let t1 = path_tree gen depth in
  let t2 = path_tree gen depth in
  Alcotest.(check int) "size" depth (Node.size t1);
  Alcotest.(check int) "height (edges)" (depth - 1) (Node.height t1);
  (* identical 100k-deep paths: the full pipeline must not overflow *)
  let config = Config.(with_check false default) in
  let r = Diff.diff ~config t1 t2 in
  Alcotest.(check bool) "replay is iso" true (Iso.equal (Diff.apply r t1) t2);
  (* and a mutated bottom exercises update propagation at depth *)
  let t3 = path_tree gen (depth - 1) in
  let r = Diff.diff ~config t1 t3 in
  Alcotest.(check bool) "shrunk replay is iso" true (Iso.equal (Diff.apply r t1) t3)

(* -------------------------------------------------------- lenient parsing *)

let test_lenient_xml () =
  let gen = Tree.gen () in
  let src = {|<a><b>one<c>two</a>|} in
  (match Treediff_doc.Xml_parser.parse_result gen src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict mode should reject unclosed tags");
  match Treediff_doc.Xml_parser.parse_result ~lenient:true gen src with
  | Error e -> Alcotest.fail ("lenient xml failed: " ^ e)
  | Ok (t, warnings) ->
    Alcotest.(check string) "root" "a" t.Node.label;
    Alcotest.(check bool) "warned" true (warnings <> [])

let test_lenient_latex () =
  let gen = Tree.gen () in
  let src = "\\begin{itemize} stray text, no item\n\\section{Hm}\ntail." in
  (match Treediff_doc.Latex_parser.parse_result gen src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict mode should reject the stray itemize");
  match Treediff_doc.Latex_parser.parse_result ~lenient:true gen src with
  | Error e -> Alcotest.fail ("lenient latex failed: " ^ e)
  | Ok (_, warnings) -> Alcotest.(check bool) "warned" true (warnings <> [])

let test_lenient_html () =
  let gen = Tree.gen () in
  let src = "<ul><p>not a list item</p></ul>" in
  match Treediff_doc.Html_parser.parse_result ~lenient:true gen src with
  | Error e -> Alcotest.fail ("lenient html failed: " ^ e)
  | Ok _ -> ()

(* --------------------------------------------------------------- env mode *)

(* Under `make fault-tests` the armed TREEDIFF_FAULT spec stays live for the
   whole process, so only this sweep runs: a fixed workload must come back
   verified-Ok (possibly degraded) or as a typed Error.  The sweep calls the
   verifier directly, outside the pipeline driver that catches injected
   faults — so a fault armed at one of the verifier's own points
   (check.depgraph, check.oracle) surfaces here as Fault.Injected, which
   counts as a typed outcome. *)
let test_env_sweep () =
  let spec = Option.value ~default:"" (Sys.getenv_opt Fault.env_var) in
  let rng = Prng.create 13 in
  for i = 1 to 25 do
    let gen = Tree.gen () in
    let t1, t2 = random_pair rng gen in
    match Diff.diff_result t1 t2 with
    | Ok r -> (
      let errs =
        try
          Diag.errors
            (Diff.verify ~config:Config.(with_check false default) r ~t1 ~t2)
        with Fault.Injected _ -> []
      in
      match errs with
      | [] -> ()
      | errs ->
        Alcotest.fail
          (Printf.sprintf "[%s] pair %d: unverified result: %s" spec i
             (Diag.summary errs)))
    | Error f ->
      if f.Diff.attempts = [] then
        Alcotest.fail (Printf.sprintf "[%s] pair %d: no attempt log" spec i)
  done

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  match Sys.getenv_opt Fault.env_var with
  | Some s when s <> "" ->
    Alcotest.run "fault(env)"
      [ ("env-sweep", [ quick ("armed " ^ s) test_env_sweep ]) ]
  | _ ->
    Alcotest.run "fault"
      [
        ( "budget",
          [
            quick "unlimited is a no-op" test_budget_unlimited;
            quick "comparison cap" test_budget_comparisons_cap;
            quick "deadline" test_budget_deadline;
            quick "visits are uncapped" test_budget_visits_uncapped;
            quick "admit" test_budget_admit;
            quick "rearm" test_budget_rearm;
          ] );
        ( "fault",
          [
            quick "parse specs" test_fault_parse;
            quick "fire at the nth hit, sticky" test_fault_fire;
            quick "prefix match and actions" test_fault_prefix_and_actions;
            quick "multiple armed specs" test_fault_multi;
          ] );
        ( "ladder",
          [
            quick "no budget: primary result" test_ladder_no_budget_is_primary;
            quick "comparison cap degrades soundly"
              test_ladder_comparison_cap_degrades;
            quick "windowed rung x200" test_ladder_windowed;
            quick "keyed rung x200" test_ladder_keyed;
            quick "approx rung x200" test_ladder_approx;
            quick "rebuild rung x200" test_ladder_rebuild;
            quick "registry sweep: never uncaught" test_fault_sweep;
            quick "zhang-shasha budget and fault" test_zs_budget_and_fault;
          ] );
        ( "deep-trees",
          [ quick "100k-deep path tree" test_deep_path_tree ] );
        ( "lenient",
          [
            quick "xml" test_lenient_xml;
            quick "latex" test_lenient_latex;
            quick "html" test_lenient_html;
          ] );
      ]
