(* Cross-module integration tests: the [WZS95] hybrid (Zhang-Shasha mapping
   fed into the paper's EditScript), keyed + value matching on documents,
   HTML end-to-end, and whole-pipeline consistency between representations. *)

module Node = Treediff_tree.Node
module Tree = Treediff_tree.Tree
module Iso = Treediff_tree.Iso
module Codec = Treediff_tree.Codec
module Diff = Treediff.Diff
module ZS = Treediff_zs.Zhang_shasha
module P = Treediff_util.Prng

(* -------------------------------------------------- ZS + moves hybrid *)

(* A Zhang-Shasha mapping (filtered to equal labels) is a valid matching for
   EditScript — the post-processing route §2 attributes to [WZS95]. *)
let zs_hybrid_prop =
  QCheck2.Test.make ~name:"ZS mapping -> EditScript is correct" ~count:80
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t1 =
        Treediff_workload.Treegen.random_labeled g gen ~max_depth:4 ~max_width:3
          ~labels:[| "R"; "A"; "B"; "S" |] ~vocab:6
      in
      let t2 = Treediff_workload.Treegen.perturb g gen t1 in
      let zs = ZS.mapping t1 t2 in
      let matching = ZS.to_matching zs in
      let r = Diff.diff_with_matching ~matching t1 t2 in
      Diff.check r ~t1 ~t2 = Ok ())

let test_zs_hybrid_move_detection () =
  (* A large subtree B moves from under A to under C.  A ZS mapping cannot
     keep both (A,A) and (B,B) — the ancestor condition forbids it — so the
     optimal mapping sacrifices the cheap A pair and keeps the 5-node B
     subtree mapped across parents.  Fed into EditScript, that cross-parent
     pair becomes a single MOV: the [WZS95] "add moves in post-processing"
     route. *)
  let gen = Tree.gen () in
  let t1 =
    Codec.parse gen {|(R (A (B (S "x") (S "y") (S "z") (S "w"))) (C (S "k")))|}
  in
  let t2 =
    Codec.parse gen {|(R (A) (C (B (S "x") (S "y") (S "z") (S "w")) (S "k")))|}
  in
  let zs = ZS.mapping t1 t2 in
  let r = Diff.diff_with_matching ~matching:(ZS.to_matching zs) t1 t2 in
  Alcotest.(check bool) "hybrid emits a move" true
    (List.exists
       (function Treediff_edit.Op.Move _ -> true | _ -> false)
       r.Diff.script);
  Alcotest.(check bool) "hybrid correct" true (Diff.check r ~t1 ~t2 = Ok ())

(* ---------------------------------------------- keyed + value matching *)

let test_keyed_then_fastmatch_document () =
  (* Sections carry stable keys in their headings; sentences are keyless. *)
  let gen = Tree.gen () in
  let t1 =
    Codec.parse gen
      {|(Document (Section "sec:intro" (Paragraph (Sentence "alpha beta gamma")))
                  (Section "sec:eval" (Paragraph (Sentence "delta epsilon"))))|}
  in
  let t2 =
    Codec.parse gen
      {|(Document (Section "sec:eval" (Paragraph (Sentence "delta epsilon")))
                  (Section "sec:intro" (Paragraph (Sentence "alpha beta gamma zeta"))))|}
  in
  let key (n : Node.t) =
    if String.equal n.Node.label "Section" then Some n.Node.value else None
  in
  let seeded = Treediff_matching.Keyed.run ~key ~t1 ~t2 () in
  Alcotest.(check int) "both sections keyed" 2
    (Treediff_matching.Matching.cardinal seeded);
  let criteria =
    Treediff_matching.Criteria.make ~leaf_f:0.5
      ~compare:Treediff_textdiff.Word_compare.distance ()
  in
  let ctx = Treediff_matching.Criteria.ctx criteria ~t1 ~t2 in
  let matching = Treediff_matching.Fast_match.run ~init:seeded ctx in
  let r =
    Diff.diff_with_matching
      ~config:(Treediff.Config.with_criteria criteria) ~matching t1 t2
  in
  Alcotest.(check bool) "correct" true (Diff.check r ~t1 ~t2 = Ok ());
  (* swapped sections: one intra-parent move, one sentence update *)
  let m = r.Diff.measure in
  Alcotest.(check int) "one move" 1 m.Treediff_edit.Script.moves;
  Alcotest.(check int) "one update" 1 m.Treediff_edit.Script.updates;
  Alcotest.(check int) "nothing rebuilt" 0
    (m.Treediff_edit.Script.inserts + m.Treediff_edit.Script.deletes)

(* --------------------------------------------------- html end to end *)

let test_html_pipeline_with_moves () =
  let old_src =
    "<h1>News</h1><p>First item of news. Second item follows.</p>\
     <ul><li>Point alpha beta.</li><li>Point gamma delta.</li></ul>"
  in
  let new_src =
    "<h1>News</h1><p>Second item follows. First item of news.</p>\
     <ul><li>Point gamma delta.</li><li>Point alpha beta.</li></ul>"
  in
  let out = Treediff_doc.Ladiff.run ~format:Treediff_doc.Format.html ~old_src ~new_src () in
  let r = out.Treediff_doc.Ladiff.result in
  Alcotest.(check bool) "verifies" true
    (Diff.check r ~t1:out.Treediff_doc.Ladiff.old_tree ~t2:out.Treediff_doc.Ladiff.new_tree
    = Ok ());
  (* pure reorders: only moves, no insert/delete/update *)
  let m = r.Diff.measure in
  Alcotest.(check int) "no inserts" 0 m.Treediff_edit.Script.inserts;
  Alcotest.(check int) "no deletes" 0 m.Treediff_edit.Script.deletes;
  Alcotest.(check bool) "moves detected" true (m.Treediff_edit.Script.moves >= 2)

(* ----------------------------------------- representation consistency *)

(* Script, delta tree and matching must tell one consistent story. *)
let representations_agree_prop =
  QCheck2.Test.make ~name:"script / delta / matching consistency" ~count:80
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t1 =
        Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.small
      in
      let t2, _ =
        Treediff_workload.Mutate.mutate g gen t1 ~actions:(1 + P.int g 12)
      in
      let r = Diff.diff ~config:Treediff_doc.Doc_tree.config t1 t2 in
      let m = r.Diff.measure in
      let ins, _del, upd, mov = Treediff.Delta.counts r.Diff.delta in
      Diff.check r ~t1 ~t2 = Ok ()
      && ins = m.Treediff_edit.Script.inserts
      && upd = m.Treediff_edit.Script.updates
      && mov = m.Treediff_edit.Script.moves
      (* unmatched-T2 count = inserts; unmatched-T1 count = deletes *)
      && m.Treediff_edit.Script.inserts
         = List.length
             (List.filter
                (fun (n : Node.t) ->
                  not (Treediff_matching.Matching.matched_new r.Diff.matching n.Node.id))
                (Node.preorder t2))
      && m.Treediff_edit.Script.deletes
         = List.length
             (List.filter
                (fun (n : Node.t) ->
                  not (Treediff_matching.Matching.matched_old r.Diff.matching n.Node.id))
                (Node.preorder t1)))

(* LaDiff end-to-end on generated corpora: parse(print(tree)) diffs cleanly
   and the marked text mentions every changed sentence. *)
let ladiff_roundtrip_prop =
  QCheck2.Test.make ~name:"ladiff over printed documents verifies" ~count:30
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t1 = Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.small in
      let t2, _ = Treediff_workload.Mutate.mutate g gen t1 ~actions:(1 + P.int g 8) in
      let old_src = Treediff_doc.Latex_parser.print t1 in
      let new_src = Treediff_doc.Latex_parser.print t2 in
      let out = Treediff_doc.Ladiff.run ~old_src ~new_src () in
      Diff.check out.Treediff_doc.Ladiff.result ~t1:out.Treediff_doc.Ladiff.old_tree
        ~t2:out.Treediff_doc.Ladiff.new_tree
      = Ok ())

let () =
  Alcotest.run "integration"
    [
      ( "zs-hybrid",
        [
          QCheck_alcotest.to_alcotest zs_hybrid_prop;
          Alcotest.test_case "hybrid detects moves" `Quick test_zs_hybrid_move_detection;
        ] );
      ( "keyed",
        [ Alcotest.test_case "keyed + FastMatch document" `Quick test_keyed_then_fastmatch_document ] );
      ( "html",
        [ Alcotest.test_case "html pipeline with moves" `Quick test_html_pipeline_with_moves ] );
      ( "consistency",
        [
          QCheck_alcotest.to_alcotest representations_agree_prop;
          QCheck_alcotest.to_alcotest ladiff_roundtrip_prop;
        ] );
    ]
