(* Parallel batch layer: the pool, the batch front door and the per-context
   word cache.

   The headline property is determinism: [Batch.run] over the same pairs,
   with the same per-pair contexts (comparison-cap budgets, armed faults),
   must produce byte-identical outcomes at [jobs:1] and [jobs:4] — scripts,
   deltas, stats counters, degradation rungs, even the failure logs.  On a
   single-core container the 4-domain run is mostly a scheduling exercise,
   but the property is exactly what makes multi-core runs trustworthy. *)

module Budget = Treediff_util.Budget
module Fault = Treediff_util.Fault
module Exec = Treediff_util.Exec
module Pool = Treediff_util.Pool
module Prng = Treediff_util.Prng
module Stats = Treediff_util.Stats
module Tree = Treediff_tree.Tree
module Node = Treediff_tree.Node
module Iso = Treediff_tree.Iso
module Diff = Treediff.Diff
module Batch = Treediff.Batch
module Script_io = Treediff_edit.Script_io
module Delta_io = Treediff.Delta_io
module Store = Treediff_store.Store
module Docgen = Treediff_workload.Docgen
module Mutate = Treediff_workload.Mutate
module Treegen = Treediff_workload.Treegen
module Word_compare = Treediff_textdiff.Word_compare

let labels = [| "D"; "P"; "S"; "W" |]

let random_pair rng gen =
  let t1 =
    Treegen.random_labeled rng gen ~max_depth:4 ~max_width:4 ~labels ~vocab:12
  in
  let t2 = Treegen.perturb rng gen t1 in
  (t1, t2)

let random_pairs ~seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ ->
      let gen = Tree.gen () in
      random_pair rng gen)

(* ------------------------------------------------------------------- pool *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  Alcotest.(check int) "jobs" 4 (Pool.jobs p);
  let r = Pool.map p 257 (fun i -> i * i) in
  Alcotest.(check int) "length" 257 (Array.length r);
  Array.iteri
    (fun i v -> if v <> i * i then Alcotest.failf "slot %d: %d" i v)
    r;
  (* the pool is reusable across runs *)
  let r2 = Pool.map p 3 (fun i -> -i) in
  Alcotest.(check (list int)) "second run" [ 0; -1; -2 ] (Array.to_list r2)

let test_pool_jobs_one_inline () =
  Pool.with_pool ~jobs:1 @@ fun p ->
  Alcotest.(check int) "jobs" 1 (Pool.jobs p);
  let r = Pool.map p 10 (fun i -> i + 1) in
  Alcotest.(check int) "last" 10 r.(9)

let test_pool_exception () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  (try
     Pool.run p 64 (fun i -> if i = 13 then failwith "boom13");
     Alcotest.fail "exception should propagate out of run"
   with Failure m -> Alcotest.(check string) "message" "boom13" m);
  (* a failed run leaves the pool usable *)
  let r = Pool.map p 8 string_of_int in
  Alcotest.(check string) "recovered" "7" r.(7)

let test_pool_not_reentrant () =
  Pool.with_pool ~jobs:2 @@ fun p ->
  try
    (* an inner run of a single item is allowed (it inlines); an inner run
       that would need the pool is not *)
    Pool.run p 2 (fun _ ->
        Pool.run p 1 (fun _ -> ());
        Pool.run p 2 (fun _ -> ()));
    Alcotest.fail "nested run should be rejected"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------ word cache *)

let test_word_cache () =
  (try
     ignore (Word_compare.Cache.create ~cap:0 ());
     Alcotest.fail "cap 0 should be rejected"
   with Invalid_argument _ -> ());
  let c = Word_compare.Cache.create ~cap:8 () in
  Alcotest.(check int) "cap recorded" 8 (Word_compare.Cache.cap c);
  let d = Word_compare.distance_with c "the quick fox" "the slow fox" in
  Alcotest.(check bool) "one word of three changed" true (d > 0.0 && d < 1.0);
  (* the entry cap bounds the table: hammering distinct words must not grow
     the cache past cap + the words of the flushing call *)
  for i = 0 to 99 do
    ignore
      (Word_compare.distance_with c
         (Printf.sprintf "w%d x%d y%d" i i i)
         (Printf.sprintf "w%d x%d z%d" i i i))
  done;
  Alcotest.(check bool) "bounded" true (Word_compare.Cache.size c <= 8 + 6);
  Word_compare.Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Word_compare.Cache.size c);
  (* cached and fresh interning agree *)
  let fresh = Word_compare.Cache.create () in
  let a = "alpha beta gamma delta" and b = "alpha gamma beta delta" in
  Alcotest.(check (float 1e-9)) "cache-independent distance"
    (Word_compare.distance_with fresh a b)
    (Word_compare.distance_with c a b);
  Alcotest.(check (float 1e-9)) "default (domain cache) agrees"
    (Word_compare.distance_with fresh a b)
    (Word_compare.distance a b)

let test_word_cache_exec () =
  let exec = Exec.create () in
  let c1 = Word_compare.exec_cache exec in
  let c2 = Word_compare.exec_cache exec in
  Alcotest.(check bool) "memoized per exec" true (c1 == c2);
  let other = Word_compare.exec_cache (Exec.create ()) in
  Alcotest.(check bool) "distinct execs, distinct caches" true (c1 != other);
  Alcotest.(check (float 1e-9)) "distance_in routes through the exec cache"
    (Word_compare.distance "a b c" "a c")
    (Word_compare.distance_in exec "a b c" "a c")

(* ----------------------------------------------------------------- parity *)

(* Deterministic per-index context recipe: most pairs unrestricted, every
   5th under a tight comparison cap, every 7th with an armed fault (the
   ladder absorbs it), every 11th with a fault armed at every rung so the
   pair fails outright.  Wall-clock deadlines are deliberately absent: they
   are the one knob that is *not* deterministic across schedulings. *)
let recipe i =
  let faults specs = Fault.create ~specs () in
  if i mod 11 = 0 && i > 0 then
    Exec.create
      ~faults:
        (faults [ { Fault.point = "edit_gen.visit"; action = Fault.Raise; at = 1 } ])
      ()
  else if i mod 7 = 0 && i > 0 then
    Exec.create
      ~faults:
        (faults
           [ { Fault.point = "fast_match.chain"; action = Fault.Raise; at = 2 } ])
      ()
  else if i mod 5 = 0 && i > 0 then
    Exec.create ~budget:(Budget.make ~max_comparisons:(20 + (i mod 3)) ()) ()
  else Exec.create ~faults:(faults []) ()

let encode_outcome = function
  | Ok (r : Diff.t) ->
    Printf.sprintf "ok|%s|fixes=%d|lc=%d|pc=%d|nv=%d|%s|%s"
      (match r.Diff.degraded with
      | None -> "full"
      | Some rung -> Diff.rung_name rung)
      r.Diff.postprocess_fixes r.Diff.stats.Stats.leaf_compares
      r.Diff.stats.Stats.partner_checks r.Diff.stats.Stats.node_visits
      (Script_io.to_string r.Diff.script)
      (Delta_io.to_string r.Diff.delta)
  | Error (f : Diff.failure) ->
    Printf.sprintf "err|%s|%s|flat=%d"
      (match f.Diff.cause with
      | Diff.Budget_exhausted e -> "budget:" ^ Budget.reason_name e.Budget.reason
      | Diff.Diagnostics ds -> Printf.sprintf "diag:%d" (List.length ds)
      | Diff.Fault p -> "fault:" ^ p
      | Diff.Exception m -> "exn:" ^ m)
      (String.concat ";"
         (List.map (fun (rung, why) -> rung ^ "=" ^ why) f.Diff.attempts))
      (List.length f.Diff.flat)

let test_batch_parity () =
  let pairs = random_pairs ~seed:4242 200 in
  let seq = Batch.run ~execs:recipe ~jobs:1 pairs in
  let par = Batch.run ~execs:recipe ~jobs:4 pairs in
  Alcotest.(check int) "lengths" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i s ->
      let a = encode_outcome s and b = encode_outcome par.(i) in
      if not (String.equal a b) then
        Alcotest.failf "pair %d diverged:\n  jobs:1 %s\n  jobs:4 %s" i a b)
    seq;
  (* the recipe exercises all three outcome classes *)
  Alcotest.(check bool) "some pairs failed" true (Batch.failed_count seq > 0);
  Alcotest.(check bool) "some pairs degraded" true (Batch.degraded_count seq > 0);
  Alcotest.(check bool) "most pairs clean" true
    (Batch.failed_count seq + Batch.degraded_count seq < Array.length seq / 2);
  Alcotest.(check bool) "stats accumulated" true
    (Stats.total (Batch.total_stats seq) > 0)

(* Same parity property with the similarity prefilter engaged on every
   chain longer than 2: signature memos live in per-pair Exec typed slots
   and all LSH tie-breaks are positional, so the prefilter must not
   introduce any jobs-count dependence. *)
let test_batch_parity_with_prefilter () =
  let pairs = random_pairs ~seed:1371 200 in
  let config =
    {
      Treediff.Config.default with
      Treediff.Config.sim_threshold = Some 2;
      sim_top_k = 4;
    }
  in
  let seq = Batch.run ~config ~execs:recipe ~jobs:1 pairs in
  let par = Batch.run ~config ~execs:recipe ~jobs:4 pairs in
  Alcotest.(check int) "lengths" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i s ->
      let a = encode_outcome s and b = encode_outcome par.(i) in
      if not (String.equal a b) then
        Alcotest.failf "pair %d diverged:\n  jobs:1 %s\n  jobs:4 %s" i a b)
    seq

let test_batch_crash_isolation () =
  let pairs = random_pairs ~seed:97 12 in
  let crash = 5 in
  let execs i =
    if i = crash then
      Exec.create
        ~faults:
          (Fault.create
             ~specs:
               [ { Fault.point = "edit_gen.visit"; action = Fault.Raise; at = 1 } ]
             ())
        ()
    else Exec.create ~faults:(Fault.create ~specs:[] ()) ()
  in
  let out = Batch.run ~execs ~jobs:4 pairs in
  Array.iteri
    (fun i o ->
      match o with
      | Error f when i = crash ->
        (match f.Diff.cause with
        | Diff.Fault p ->
          Alcotest.(check string) "failing point" "edit_gen.visit" p
        | _ -> Alcotest.fail "expected a fault cause");
        Alcotest.(check bool) "flat fallback present" true (f.Diff.flat <> [])
      | Error _ -> Alcotest.failf "pair %d infected by pair %d's crash" i crash
      | Ok r ->
        if i = crash then Alcotest.fail "crashing pair should not succeed";
        let t1, t2 = pairs.(i) in
        let replayed = Diff.apply r t1 in
        if not (Iso.equal replayed t2) then
          Alcotest.failf "pair %d: script does not reproduce the new tree" i)
    out

(* ------------------------------------------------------ store batch replay *)

let lineage ?(seed = 41) ?(actions = 5) n =
  let g = Prng.create seed in
  let gen = Tree.gen () in
  let first = Docgen.generate g gen Docgen.small in
  let rec grow acc doc k =
    if k = 0 then List.rev acc
    else
      let doc', _ = Mutate.mutate g gen doc ~actions in
      grow (doc' :: acc) doc' (k - 1)
  in
  grow [ first ] first (n - 1)

let tmp_path =
  let n = ref 0 in
  fun suffix ->
    incr n;
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "treediff_batch_test_%d_%d_%s" (Unix.getpid ()) !n
           suffix)
    in
    if Sys.file_exists path then Sys.remove path;
    path

let ok_exn what = function
  | Ok v -> v
  | Error msg -> Alcotest.fail (what ^ ": " ^ msg)

let test_store_materialize_all () =
  let path = tmp_path "matall" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let docs = lineage 10 in
  let store = ok_exn "init" (Store.init ~interval:4 path) in
  List.iter (fun doc -> ignore (ok_exn "commit" (Store.commit store doc))) docs;
  let versions = Array.init (Store.versions store) (fun i -> i) in
  let all = Store.materialize_all ~verify:true ~jobs:4 store versions in
  Array.iteri
    (fun v r ->
      let t = ok_exn (Printf.sprintf "materialize_all v%d" v) r in
      let s = ok_exn "materialize" (Store.materialize store v) in
      if not (Iso.equal t s) then
        Alcotest.failf "version %d: parallel and sequential replay disagree" v)
    all

(* ------------------------------------------------------------------ suite *)

let () =
  Alcotest.run "batch"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "jobs:1 runs inline" `Quick test_pool_jobs_one_inline;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_exception;
          Alcotest.test_case "not re-entrant" `Quick test_pool_not_reentrant;
        ] );
      ( "word-cache",
        [
          Alcotest.test_case "cap and clear" `Quick test_word_cache;
          Alcotest.test_case "per-exec cache" `Quick test_word_cache_exec;
        ] );
      ( "batch",
        [
          Alcotest.test_case "jobs:4 byte-identical to jobs:1" `Quick
            test_batch_parity;
          Alcotest.test_case "jobs parity with the sim prefilter on" `Quick
            test_batch_parity_with_prefilter;
          Alcotest.test_case "crash in one pair is isolated" `Quick
            test_batch_crash_isolation;
          Alcotest.test_case "store materialize_all parity" `Quick
            test_store_materialize_all;
        ] );
    ]
