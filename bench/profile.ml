(* Ad-hoc phase profiler for the fastmatch hot path: not part of the
   published tables, just `dune exec bench/profile.exe` when hunting
   regressions. *)

let time label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  Printf.printf "%-28s %8.2f ms\n%!" label ((t1 -. t0) *. 1000.0);
  r

let () =
  let g = Treediff_util.Prng.create 4242 in
  let gen = Treediff_tree.Tree.gen () in
  let doc = Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.medium in
  let doc2, _ = Treediff_workload.Mutate.mutate g gen doc ~actions:15 in
  let criteria = Treediff_doc.Doc_tree.criteria in
  Printf.printf "n1=%d n2=%d\n" (Treediff_tree.Tree.size doc) (Treediff_tree.Tree.size doc2);
  let reps = 5 in
  for _ = 1 to 2 do
    let ctx = ref None in
    time "ctx build x5" (fun () ->
        for _ = 1 to reps do
          ctx := Some (Treediff_matching.Criteria.ctx criteria ~t1:doc ~t2:doc2)
        done);
    let ctx = Option.get !ctx in
    let idx1 = Treediff_matching.Criteria.index1 ctx
    and idx2 = Treediff_matching.Criteria.index2 ctx in
    let leaf_labels = Treediff_matching.Label_order.leaf_labels_of_indexes idx1 idx2 in
    let internal_labels =
      Treediff_matching.Label_order.internal_labels_of_indexes idx1 idx2
    in
    time "label orders x5" (fun () ->
        for _ = 1 to reps do
          ignore (Treediff_matching.Label_order.leaf_labels_of_indexes idx1 idx2);
          ignore (Treediff_matching.Label_order.internal_labels_of_indexes idx1 idx2)
        done);
    time "fastmatch leaf phase x5" (fun () ->
        for _ = 1 to reps do
          let m = Treediff_matching.Matching.create () in
          List.iter
            (fun l -> Treediff_matching.Fast_match.match_label ctx m l ~leaf:true)
            leaf_labels
        done);
    let m0 = Treediff_matching.Matching.create () in
    List.iter
      (fun l -> Treediff_matching.Fast_match.match_label ctx m0 l ~leaf:true)
      leaf_labels;
    time "fastmatch internal phase x5" (fun () ->
        for _ = 1 to reps do
          let m = Treediff_matching.Matching.copy m0 in
          List.iter
            (fun l -> Treediff_matching.Fast_match.match_label ctx m l ~leaf:false)
            internal_labels
        done);
    time "full Fast_match.run x5" (fun () ->
        for _ = 1 to reps do
          ignore (Treediff_matching.Fast_match.run ctx)
        done);
    time "full diff x5" (fun () ->
        for _ = 1 to reps do
          ignore (Treediff.Diff.diff ~config:Treediff_doc.Doc_tree.config doc doc2)
        done)
  done

(* Second section: where does the cold leaf phase actually go? *)
let () =
  let g = Treediff_util.Prng.create 4242 in
  let gen = Treediff_tree.Tree.gen () in
  let doc = Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.medium in
  let doc2, _ = Treediff_workload.Mutate.mutate g gen doc ~actions:15 in
  let calls = ref 0 in
  let compare a b =
    incr calls;
    Treediff_textdiff.Word_compare.distance a b
  in
  let criteria =
    Treediff_matching.Criteria.make ~leaf_f:0.5 ~internal_t:0.6 ~compare ()
  in
  let t0 = Unix.gettimeofday () in
  let ctx = Treediff_matching.Criteria.ctx criteria ~t1:doc ~t2:doc2 in
  ignore (Treediff_matching.Fast_match.run ctx);
  let t1 = Unix.gettimeofday () in
  Printf.printf "cold Fast_match.run: %.2f ms, %d distance calls\n%!"
    ((t1 -. t0) *. 1000.0) !calls;
  (* raw distance cost on two mid-size unequal sentences from the corpus *)
  let leaves t =
    let acc = ref [] in
    let rec walk n =
      if Treediff_tree.Node.is_leaf n then acc := n :: !acc
      else Treediff_tree.Node.iter_children walk n
    in
    walk t;
    List.rev !acc
  in
  let l1 = leaves doc and l2 = leaves doc2 in
  let a = (List.nth l1 3).Treediff_tree.Node.value
  and b = (List.nth l2 7).Treediff_tree.Node.value in
  Printf.printf "sample values: |a|=%d |b|=%d words_a=%d words_b=%d\n%!"
    (String.length a) (String.length b)
    (Array.length (Treediff_textdiff.Word_compare.words a))
    (Array.length (Treediff_textdiff.Word_compare.words b));
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 10_000 do
    ignore (Treediff_textdiff.Word_compare.distance a b)
  done;
  let t1 = Unix.gettimeofday () in
  Printf.printf "distance x10000 (unequal pair): %.2f ms (%.2f us/call)\n%!"
    ((t1 -. t0) *. 1000.0)
    ((t1 -. t0) *. 100.0)
