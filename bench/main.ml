(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8 and Appendix A), plus the complexity-claim experiments of
   §2/§5.  Run with no arguments for all experiment tables; name experiments
   to run a subset; add --bechamel for wall-clock micro-benchmarks (one
   Bechamel test per table/figure). *)

module E = Treediff_experiments

let experiments =
  [
    ("fig13a", "Figure 13(a): weighted vs unweighted edit distance",
     fun () -> ignore (E.Fig13a.run ()));
    ("fig13b", "Figure 13(b): FastMatch comparisons vs analytic bound",
     fun () -> ignore (E.Fig13b.run ()));
    ("table1", "Table 1: mismatched-paragraph bound vs threshold t",
     fun () -> ignore (E.Table1.run ()));
    ("sample", "Appendix A: LaDiff sample run (Figures 14-16, Table 2)",
     fun () -> ignore (E.Sample_run.run ()));
    ("scaling", "Scaling: ours vs Zhang-Shasha",
     fun () -> ignore (E.Scaling.run ()));
    ("quality", "Delta quality: ours vs flat diff vs Zhang-Shasha",
     fun () -> ignore (E.Quality.run ()));
    ("optimality", "Optimality: matcher agreement, ablation, C.2 bound",
     fun () -> ignore (E.Optimality.run ()));
    ("ablation", "Ablations: match threshold t sweep, A(k) scan window sweep",
     fun () -> ignore (E.Ablation.run ()));
  ]

(* ------------------------------------------------- Bechamel micro-benches *)

let bechamel_tests () =
  let open Bechamel in
  (* Shared inputs, built once, outside the timed region. *)
  let g = Treediff_util.Prng.create 4242 in
  let gen = Treediff_tree.Tree.gen () in
  let doc = Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.medium in
  let doc2, _ = Treediff_workload.Mutate.mutate g gen doc ~actions:15 in
  let small = Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.small in
  let small2, _ = Treediff_workload.Mutate.mutate g gen small ~actions:8 in
  let config = Treediff_doc.Doc_tree.config in
  let criteria = Treediff_doc.Doc_tree.criteria in
  let old_src = E.Sample_run.old_doc and new_src = E.Sample_run.new_doc in
  let latex1 = Treediff_doc.Latex_parser.print doc
  and latex2 = Treediff_doc.Latex_parser.print doc2 in
  [
    Test.make ~name:"fig13a/diff-medium-pair"
      (Staged.stage (fun () -> ignore (Treediff.Diff.diff ~config doc doc2)));
    Test.make ~name:"fig13b/fastmatch-only"
      (Staged.stage (fun () ->
           let ctx = Treediff_matching.Criteria.ctx criteria ~t1:doc ~t2:doc2 in
           ignore (Treediff_matching.Fast_match.run ctx)));
    Test.make ~name:"table1/mc3-violation-scan"
      (Staged.stage (fun () ->
           let ctx = Treediff_matching.Criteria.ctx criteria ~t1:small ~t2:small2 in
           ignore (Treediff_matching.Criteria.mc3_violations ctx)));
    Test.make ~name:"sample/ladiff-end-to-end"
      (Staged.stage (fun () -> ignore (Treediff_doc.Ladiff.run ~old_src ~new_src ())));
    Test.make ~name:"scaling/ours-small-pair"
      (Staged.stage (fun () -> ignore (Treediff.Diff.diff ~config small small2)));
    Test.make ~name:"scaling/zhang-shasha-small-pair"
      (Staged.stage (fun () -> ignore (Treediff_zs.Zhang_shasha.mapping small small2)));
    Test.make ~name:"quality/flat-line-diff"
      (Staged.stage (fun () -> ignore (Treediff_textdiff.Line_diff.diff latex1 latex2)));
    Test.make ~name:"quality/word-compare"
      (Staged.stage (fun () ->
           ignore
             (Treediff_textdiff.Word_compare.distance
                "the quick brown fox jumps over the lazy dog near the river bank"
                "the quick brown fox leaps over a lazy dog near the river")));
    Test.make ~name:"ablation/levenshtein"
      (Staged.stage (fun () ->
           ignore (Treediff_textdiff.Levenshtein.normalized "configuration" "confabulation")));
    Test.make ~name:"ablation/lcs-only-window-0"
      (Staged.stage (fun () ->
           let config = { config with Treediff.Config.scan_window = Some 0 } in
           ignore (Treediff.Diff.diff ~config small small2)));
  ]

(* Provenance for emitted JSON: the commit the numbers were measured at and
   the host's core count, so BENCH_*.json files stay traceable after the
   fact (a speedup measured on one core is not a regression on eight). *)
let git_rev () =
  match
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    line
  with
  | "" -> "unknown"
  | rev -> rev
  | exception _ -> "unknown"

let json_header oc label =
  Printf.fprintf oc
    "{\n  \"label\": %S,\n  \"git\": %S,\n  \"cores\": %d,\n  \"unit\": \"ns/run\",\n"
    label (git_rev ())
    (Domain.recommended_domain_count ())

(* Per-benchmark ns/run estimates as a machine-readable trajectory file.
   Schema: {"label": <basename>, "git": <short rev>, "cores": <int>,
            "unit": "ns/run",
            "results": [{"name": ..., "ns_per_run": ...}, ...]}. *)
let write_json ~out path rows =
  let oc = open_out path in
  let label = Filename.remove_extension (Filename.basename path) in
  json_header oc label;
  Printf.fprintf oc "  \"results\": [";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "%s\n    { \"name\": %S, \"ns_per_run\": %s }"
        (if i > 0 then "," else "")
        name
        (match est with Some e -> Printf.sprintf "%.2f" e | None -> "null"))
    rows;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc;
  Printf.fprintf out "wrote %s\n" path

let run_bechamel ?json ~out () =
  let open Bechamel in
  Printf.fprintf out "== Bechamel wall-clock benchmarks ==\n";
  let tests = Test.make_grouped ~name:"treediff" (bechamel_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let estimates =
    List.map
      (fun (name, r) ->
        match Analyze.OLS.estimates r with
        | Some (est :: _) -> (name, Some est)
        | Some [] | None -> (name, None))
      rows
  in
  let table = Treediff_util.Table.create ~headers:[ "benchmark"; "time/run" ] in
  List.iter
    (fun (name, est) ->
      let cell =
        match est with
        | Some est ->
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        | None -> "n/a"
      in
      Treediff_util.Table.add_row table [ name; cell ])
    estimates;
  Treediff_util.Table.print_to out table;
  Printf.fprintf out "\n%!";
  match json with None -> () | Some path -> write_json ~out path estimates

(* ------------------------------------------------------- store benchmark *)

module Store = Treediff_store.Store

(* Commit latency, materialization latency vs chain depth, and bytes per
   version — the same lineage committed twice: once under the default
   checkpoint policy and once with checkpoints disabled, so the depth sweep
   isolates what checkpoints buy. *)
let run_store ?json ~out () =
  Printf.fprintf out "== Store: delta chain vs checkpoint policy ==\n";
  let commits = 50 in
  let g = Treediff_util.Prng.create 2026 in
  let gen = Treediff_tree.Tree.gen () in
  let docs =
    let first =
      Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.medium
    in
    let rec grow acc doc k =
      if k = 0 then List.rev acc
      else
        let doc', _ = Treediff_workload.Mutate.mutate g gen doc ~actions:6 in
        grow (doc' :: acc) doc' (k - 1)
    in
    grow [ first ] first commits
  in
  let tmp suffix =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "treediff_bench_%d_%s.tds" (Unix.getpid ()) suffix)
    in
    if Sys.file_exists path then Sys.remove path;
    path
  in
  let ok = function
    | Ok v -> v
    | Error msg -> failwith ("bench store: " ^ msg)
  in
  let time_ns f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e9)
  in
  let ckpt_path = tmp "ckpt" and linear_path = tmp "linear" in
  let ckpt = ok (Store.init ckpt_path) in
  let linear = ok (Store.init ~interval:0 ~max_replay_ops:0 linear_path) in
  let commit_ns =
    List.map
      (fun doc ->
        ignore (ok (Store.commit linear doc));
        let _, ns = time_ns (fun () -> ok (Store.commit ckpt doc)) in
        ns)
      docs
  in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let reps = 20 in
  let mat store v =
    let _, first = time_ns (fun () -> ok (Store.materialize store v)) in
    let rec go k acc =
      if k = 0 then acc
      else
        let _, ns = time_ns (fun () -> ok (Store.materialize store v)) in
        go (k - 1) (ns :: acc)
    in
    mean (go (reps - 1) [ first ])
  in
  let depths = [ 1; 5; 10; 25; 50 ] in
  let sweep = List.map (fun v -> (v, mat ckpt v, mat linear v)) depths in
  let archive_bytes path = (Unix.stat path).Unix.st_size in
  let snapshot_bytes =
    List.fold_left
      (fun acc v ->
        acc
        + String.length (Treediff_tree.Codec.encode (ok (Store.materialize ckpt v))))
      0
      (List.init (commits + 1) Fun.id)
  in
  let per v = float_of_int v /. float_of_int (commits + 1) in
  Printf.fprintf out "commit latency: %.2f us mean over %d commits\n"
    (mean commit_ns /. 1e3) commits;
  Printf.fprintf out
    "archive bytes/version: %.0f checkpointed, %.0f checkpoint-free, %.0f as \
     full snapshots\n"
    (per (archive_bytes ckpt_path))
    (per (archive_bytes linear_path))
    (per snapshot_bytes);
  let table =
    Treediff_util.Table.create
      ~headers:[ "depth"; "checkpointed"; "checkpoint-free"; "speedup" ]
  in
  List.iter
    (fun (v, c, l) ->
      Treediff_util.Table.add_row table
        [
          string_of_int v;
          Printf.sprintf "%.2f us" (c /. 1e3);
          Printf.sprintf "%.2f us" (l /. 1e3);
          Printf.sprintf "%.1fx" (l /. c);
        ])
    sweep;
  Treediff_util.Table.print_to out table;
  Printf.fprintf out "\n%!";
  (match json with
  | None -> ()
  | Some path ->
    let rows =
      ("store/commit-mean", Some (mean commit_ns))
      :: List.concat_map
           (fun (v, c, l) ->
             [
               (Printf.sprintf "store/materialize-depth-%d-checkpointed" v, Some c);
               (Printf.sprintf "store/materialize-depth-%d-linear" v, Some l);
             ])
           sweep
    in
    write_json ~out path rows);
  Sys.remove ckpt_path;
  Sys.remove linear_path

(* ------------------------------------------------ sharded corpus at scale *)

module Shard = Treediff_store.Shard

(* The corpus store at scale: a synthetic many-document corpus bulk-loaded
   through the write-ahead manifest, then measured for commit throughput,
   bytes per version, cold-cache materialization tail latency and ingest
   scaling across --jobs (with the byte-identity check that makes the jobs
   knob safe to turn).  Full mode is the committed BENCH_store_scale.json
   trajectory: 10k documents x 100 versions = 1M versions; --smoke drops to
   100 documents for the CI gate.  Speedup across jobs tracks the host's
   core count — on a 1-core container every level measures the same work
   plus domain overhead, so ~1.0x is the honest expectation there. *)
let run_store_scale ?json ~out ~jobs ~smoke () =
  let docs, versions = if smoke then (100, 100) else (10_000, 100) in
  let shards = if smoke then 8 else 64 in
  let cores = Domain.recommended_domain_count () in
  Printf.fprintf out
    "== Sharded store at scale: %d docs x %d versions, %d shards (%d core%s) \
     ==\n"
    docs versions shards cores
    (if cores = 1 then "" else "s");
  let ok = function
    | Ok v -> v
    | Error msg -> failwith ("bench store-scale: " ^ msg)
  in
  let tmp_root suffix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "treediff_scale_%d_%s" (Unix.getpid ()) suffix)
  in
  let rm_rf dir =
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
  in
  (* tiny trees whose consecutive versions differ in three leaf texts:
     update-only deltas, so the measurement weighs the store machinery
     (manifest, shard appends, checkpoint policy), not diff complexity *)
  let gen_tree d v =
    let gen = Treediff_tree.Tree.gen () in
    Treediff_tree.Codec.parse gen
      (Printf.sprintf
         {|(D (P (S "alpha %d") (S "beta %d rev %d")) (P (S "gamma %d") (S "delta rev %d")) (P (S "epsilon %d")))|}
         d d v d v (d + v))
  in
  let sources n_docs n_versions =
    List.init n_docs (fun d ->
        {
          Shard.name = Printf.sprintf "doc-%05d" d;
          count = n_versions;
          load = (fun v -> Ok (gen_tree d v));
        })
  in
  (* ---- the main ingest: one pass, commit throughput + bytes/version *)
  let main_jobs = Option.value jobs ~default:1 in
  let dir = tmp_root "corpus" in
  rm_rf dir;
  let corpus = ok (Shard.init ~shards dir) in
  let t0 = Unix.gettimeofday () in
  let last_tick = ref t0 in
  let report =
    ok
      (Shard.ingest ~jobs:main_jobs ~chunk_docs:32
         ~on_chunk:(fun ~done_ ~total ->
           let now = Unix.gettimeofday () in
           if now -. !last_tick > 10.0 || done_ = total then begin
             last_tick := now;
             Printf.fprintf out "  ingest chunk %d/%d (%.0f s)\n%!" done_ total
               (now -. t0)
           end)
         corpus (sources docs versions))
  in
  let wall = Unix.gettimeofday () -. t0 in
  let appended = max 1 report.Shard.versions_appended in
  let commits_per_s = float_of_int appended /. wall in
  let commit_mean_ns = wall *. 1e9 /. float_of_int appended in
  if report.Shard.docs_failed <> [] then
    failwith
      (Printf.sprintf "bench store-scale: %d documents failed to ingest"
         (List.length report.Shard.docs_failed));
  let st = Shard.stats corpus in
  let total_bytes =
    Array.fold_left ( + ) 0 st.Shard.stat_shard_bytes
    + st.Shard.stat_manifest_bytes
  in
  let bytes_per_version =
    float_of_int total_bytes /. float_of_int (max 1 st.Shard.stat_versions)
  in
  Printf.fprintf out
    "ingest: %d versions in %.1f s — %.0f commits/s, %.1f us/commit (jobs %d)\n"
    appended wall commits_per_s (commit_mean_ns /. 1e3) main_jobs;
  Printf.fprintf out "on disk: %.1f bytes/version (%d docs, %d versions)\n"
    bytes_per_version st.Shard.stat_docs st.Shard.stat_versions;
  (* ---- cold-cache materialize p99: a fresh handle has no chains loaded,
     so each first-touch document load scans its shard file *)
  let cold = ok (Shard.open_ dir) in
  let prng = Treediff_util.Prng.create 7 in
  let samples = min docs 256 in
  let lat =
    Array.init samples (fun _ ->
        let doc = Printf.sprintf "doc-%05d" (Treediff_util.Prng.int prng docs) in
        let t0 = Unix.gettimeofday () in
        ignore (ok (Shard.materialize cold ~doc (versions - 1)));
        (Unix.gettimeofday () -. t0) *. 1e9)
  in
  Array.sort compare lat;
  let pct p = lat.(min (samples - 1) (int_of_float (p *. float_of_int samples))) in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  Printf.fprintf out
    "cold-cache materialize (head version, %d random docs): p50 %.2f ms, p99 \
     %.2f ms\n"
    samples (p50 /. 1e6) (p99 /. 1e6);
  (* ---- ingest scaling vs --jobs on a subset corpus, with the byte-identity
     check: the corpus must come out identical whatever the job count *)
  let sub_docs = max 16 (docs / 20) and sub_versions = 20 in
  let corpus_digest dir =
    let entries = Sys.readdir dir in
    Array.sort compare entries;
    Digest.to_hex
      (Digest.string
         (String.concat "|"
            (Array.to_list
               (Array.map
                  (fun f ->
                    f ^ ":" ^ Digest.to_hex (Digest.file (Filename.concat dir f)))
                  entries))))
  in
  let scaling =
    List.map
      (fun j ->
        let d = tmp_root (Printf.sprintf "jobs%d" j) in
        rm_rf d;
        let c = ok (Shard.init ~shards:8 d) in
        let t0 = Unix.gettimeofday () in
        let r = ok (Shard.ingest ~jobs:j ~chunk_docs:16 c (sources sub_docs sub_versions)) in
        let wall = Unix.gettimeofday () -. t0 in
        (j, d, wall *. 1e9 /. float_of_int (max 1 r.Shard.versions_appended)))
      [ 1; 2; 4 ]
  in
  let digests = List.map (fun (_, d, _) -> corpus_digest d) scaling in
  let identical =
    match digests with [] -> true | h :: t -> List.for_all (( = ) h) t
  in
  let table =
    Treediff_util.Table.create ~headers:[ "jobs"; "ns/version"; "speedup" ]
  in
  let base_ns = match scaling with (_, _, ns) :: _ -> ns | [] -> 1.0 in
  List.iter
    (fun (j, _, ns) ->
      Treediff_util.Table.add_row table
        [
          string_of_int j;
          Printf.sprintf "%.0f" ns;
          Printf.sprintf "%.2fx" (base_ns /. ns);
        ])
    scaling;
  Treediff_util.Table.print_to out table;
  Printf.fprintf out
    "corpus bytes across jobs 1/2/4: %s (%d docs x %d versions subset)\n%!"
    (if identical then "identical" else "DIVERGED")
    sub_docs sub_versions;
  if not identical then
    failwith "bench store-scale: corpus bytes diverged across job counts";
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    json_header oc (Filename.remove_extension (Filename.basename path));
    Printf.fprintf oc
      "  \"corpus\": { \"docs\": %d, \"versions\": %d, \"shards\": %d, \
       \"total_versions\": %d },\n"
      docs versions shards st.Shard.stat_versions;
    Printf.fprintf oc "  \"jobs\": %d,\n" main_jobs;
    Printf.fprintf oc "  \"commits_per_s\": %.2f,\n" commits_per_s;
    Printf.fprintf oc "  \"bytes_per_version\": %.2f,\n" bytes_per_version;
    Printf.fprintf oc "  \"ingest_jobs_identical\": %b,\n" identical;
    Printf.fprintf oc "  \"results\": [";
    let rows =
      [
        ("store_scale/commit-mean", commit_mean_ns);
        ("store_scale/materialize-cold-p50", p50);
        ("store_scale/materialize-cold-p99", p99);
      ]
      @ List.map
          (fun (j, _, ns) -> (Printf.sprintf "store_scale/ingest-jobs-%d" j, ns))
          scaling
    in
    List.iteri
      (fun i (name, v) ->
        Printf.fprintf oc "%s\n    { \"name\": %S, \"ns_per_run\": %.2f }"
          (if i > 0 then "," else "")
          name v)
      rows;
    Printf.fprintf oc "\n  ]\n}\n";
    close_out oc;
    Printf.fprintf out "wrote %s\n" path);
  rm_rf dir;
  List.iter (fun (_, d, _) -> rm_rf d) scaling

(* ------------------------------------------------- parallel batch diffing *)

(* Wall-clock of [Batch.run] over the fig13 corpora at several domain
   counts, with a byte-identity check across them.  Speedup tracks the
   machine: on a single-core container every level measures the same work
   plus domain overhead, so ~1.0x (or slightly below) is the honest
   expectation there, while multi-core hosts see the fan-out. *)
let run_batch_bench ?json ~out ~jobs () =
  let cores = Domain.recommended_domain_count () in
  Printf.fprintf out "== Parallel batch diffing (%d core%s available) ==\n"
    cores (if cores = 1 then "" else "s");
  let pairs =
    Treediff_workload.Corpus.standard ()
    |> List.concat_map Treediff_workload.Corpus.consecutive_pairs
    |> Array.of_list
  in
  Printf.fprintf out "corpus: %d consecutive version pairs\n" (Array.length pairs);
  let levels =
    List.sort_uniq compare (match jobs with None -> [ 1; 2; 4 ] | Some j -> [ 1; j ])
  in
  let fingerprint outcomes =
    Array.to_list outcomes
    |> List.map (function
         | Ok (r : Treediff.Diff.t) ->
           (match r.Treediff.Diff.degraded with
           | None -> "full|"
           | Some rung -> Treediff.Diff.rung_name rung ^ "|")
           ^ Treediff_edit.Script_io.to_string r.Treediff.Diff.script
         | Error _ -> "error")
    |> String.concat "\x00"
  in
  let reps = 3 in
  let time_run jobs =
    Treediff_util.Pool.with_pool ~jobs @@ fun pool ->
    let best = ref infinity in
    let fp = ref "" in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let outcomes = Treediff.Batch.run ~pool pairs in
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      if ms < !best then best := ms;
      fp := fingerprint outcomes
    done;
    (!best, !fp)
  in
  let runs = List.map (fun j -> (j, time_run j)) levels in
  let base_ms, base_fp =
    match runs with (_, r) :: _ -> r | [] -> assert false
  in
  let table =
    Treediff_util.Table.create ~headers:[ "jobs"; "wall (best of 3)"; "speedup"; "identical" ]
  in
  List.iter
    (fun (j, (ms, fp)) ->
      Treediff_util.Table.add_row table
        [
          string_of_int j;
          Printf.sprintf "%.1f ms" ms;
          Printf.sprintf "%.2fx" (base_ms /. ms);
          (if String.equal fp base_fp then "yes" else "NO");
        ])
    runs;
  Treediff_util.Table.print_to out table;
  List.iter
    (fun (j, (_, fp)) ->
      if not (String.equal fp base_fp) then
        failwith
          (Printf.sprintf "bench batch: jobs:%d output differs from jobs:1" j))
    runs;
  Printf.fprintf out "\n%!";
  match json with
  | None -> ()
  | Some path ->
    let rows =
      ("batch/cores", Some (float_of_int cores))
      :: ("batch/pairs", Some (float_of_int (Array.length pairs)))
      :: List.map
           (fun (j, (ms, _)) ->
             (Printf.sprintf "batch/jobs-%d-wall" j, Some (ms *. 1e6)))
           runs
    in
    write_json ~out path rows

(* ------------------------------------------------------ similarity layer *)

module Criteria = Treediff_matching.Criteria
module Fast_match = Treediff_matching.Fast_match
module Sim_index = Treediff_matching.Sim_index

(* Exact FastMatch vs the LSH prefilter vs the greedy approx matcher on the
   adversarial long-chain corpus (mutually similar, pairwise-distinct
   sentences, shuffled: the chain LCS degenerates and the straggler scan
   probes ~half the chain per node), plus matching quality — precision and
   recall against exact FastMatch matchings — over every corpus. *)
let run_sim ?json ~out () =
  Printf.fprintf out "== Similarity layer: prefilter vs exact FastMatch ==\n";
  let criteria =
    Criteria.make ~compare:Treediff_textdiff.Word_compare.distance ()
  in
  let time_best ?(reps = 3) f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let x = f () in
      let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      if ns < !best then best := ns;
      result := Some x
    done;
    match !result with Some x -> (x, !best) | None -> assert false
  in
  let sim = (64, 8) in
  let sizes = [ 100; 200; 400; 800 ] in
  let sweep =
    List.map
      (fun n ->
        let gen = Treediff_tree.Tree.gen () in
        let t1, t2 = E.Sim_quality.long_chain_pair ~n gen in
        let exact, exact_ns =
          time_best (fun () -> Fast_match.run (Criteria.ctx criteria ~t1 ~t2))
        in
        let pre, pre_ns =
          time_best (fun () ->
              Fast_match.run ~sim (Criteria.ctx criteria ~t1 ~t2))
        in
        let _, approx_ns = time_best (fun () -> Sim_index.greedy ~t1 ~t2 ()) in
        (n, exact_ns, pre_ns, approx_ns, E.Sim_quality.score ~exact pre))
      sizes
  in
  let table =
    Treediff_util.Table.create
      ~headers:
        [
          "chain"; "exact"; "prefilter"; "speedup"; "approx"; "precision";
          "recall";
        ]
  in
  List.iter
    (fun (n, exact_ns, pre_ns, approx_ns, s) ->
      Treediff_util.Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.1f ms" (exact_ns /. 1e6);
          Printf.sprintf "%.1f ms" (pre_ns /. 1e6);
          Printf.sprintf "%.1fx" (exact_ns /. pre_ns);
          Printf.sprintf "%.1f ms" (approx_ns /. 1e6);
          Printf.sprintf "%.3f" (E.Sim_quality.precision s);
          Printf.sprintf "%.3f" (E.Sim_quality.recall s);
        ])
    sweep;
  Treediff_util.Table.print_to out table;
  Printf.fprintf out "\n%!";
  let quality = E.Sim_quality.compute () in
  let qtable =
    Treediff_util.Table.create
      ~headers:
        [
          "corpus"; "tree pairs"; "exact pairs"; "prefilter P"; "prefilter R";
          "approx P"; "approx R";
        ]
  in
  List.iter
    (fun (r : E.Sim_quality.row) ->
      Treediff_util.Table.add_row qtable
        [
          r.E.Sim_quality.corpus;
          string_of_int r.E.Sim_quality.pairs;
          string_of_int r.E.Sim_quality.prefilter.E.Sim_quality.exact;
          Printf.sprintf "%.3f" (E.Sim_quality.precision r.E.Sim_quality.prefilter);
          Printf.sprintf "%.3f" (E.Sim_quality.recall r.E.Sim_quality.prefilter);
          Printf.sprintf "%.3f" (E.Sim_quality.precision r.E.Sim_quality.approx);
          Printf.sprintf "%.3f" (E.Sim_quality.recall r.E.Sim_quality.approx);
        ])
    quality.E.Sim_quality.rows;
  Treediff_util.Table.print_to out qtable;
  Printf.fprintf out "\n%!";
  match json with
  | None -> ()
  | Some path ->
    let n, exact_ns, pre_ns, _, s =
      List.nth sweep (List.length sweep - 1)
    in
    let oc = open_out path in
    json_header oc (Filename.remove_extension (Filename.basename path));
    Printf.fprintf oc
      "  \"summary\": { \"corpus\": \"long-chain-%d\", \"speedup\": %.2f, \
       \"precision\": %.4f, \"recall\": %.4f },\n"
      n (exact_ns /. pre_ns)
      (E.Sim_quality.precision s)
      (E.Sim_quality.recall s);
    Printf.fprintf oc "  \"quality\": [";
    List.iteri
      (fun i (r : E.Sim_quality.row) ->
        Printf.fprintf oc
          "%s\n    { \"corpus\": %S, \"prefilter_precision\": %.4f, \
           \"prefilter_recall\": %.4f, \"approx_precision\": %.4f, \
           \"approx_recall\": %.4f }"
          (if i > 0 then "," else "")
          r.E.Sim_quality.corpus
          (E.Sim_quality.precision r.E.Sim_quality.prefilter)
          (E.Sim_quality.recall r.E.Sim_quality.prefilter)
          (E.Sim_quality.precision r.E.Sim_quality.approx)
          (E.Sim_quality.recall r.E.Sim_quality.approx))
      quality.E.Sim_quality.rows;
    Printf.fprintf oc "\n  ],\n  \"results\": [";
    let rows =
      List.concat_map
        (fun (n, exact_ns, pre_ns, approx_ns, _) ->
          [
            (Printf.sprintf "sim/long-chain-%d/exact" n, Some exact_ns);
            (Printf.sprintf "sim/long-chain-%d/prefilter" n, Some pre_ns);
            (Printf.sprintf "sim/long-chain-%d/approx" n, Some approx_ns);
          ])
        sweep
    in
    List.iteri
      (fun i (name, est) ->
        Printf.fprintf oc "%s\n    { \"name\": %S, \"ns_per_run\": %s }"
          (if i > 0 then "," else "")
          name
          (match est with Some e -> Printf.sprintf "%.2f" e | None -> "null"))
      rows;
    Printf.fprintf oc "\n  ]\n}\n";
    close_out oc;
    Printf.fprintf out "wrote %s\n" path

(* ------------------------------------------------ degradation frequency *)

(* How often does a wall-clock budget push the pipeline off the primary
   algorithm?  Diff a corpus of growing documents under the given deadline
   and tabulate which ladder rung produced each result. *)
let run_budget ~out ms =
  Printf.fprintf out "== Degradation frequency under a %.3g ms budget ==\n" ms;
  let g = Treediff_util.Prng.create 97 in
  let table =
    Treediff_util.Table.create
      ~headers:
        [
          "paragraphs"; "nodes"; "primary"; "windowed"; "keyed"; "approx";
          "rebuild"; "failed";
        ]
  in
  List.iter
    (fun paragraphs ->
      let counts = [| 0; 0; 0; 0; 0; 0 |] in
      let nodes = ref 0 in
      let trials = 10 in
      for _ = 1 to trials do
        let gen = Treediff_tree.Tree.gen () in
        let t1 =
          Treediff_workload.Treegen.random_document g gen ~paragraphs ~vocab:60
        in
        let t2 = Treediff_workload.Treegen.perturb g gen ~ops:(paragraphs / 2) t1 in
        nodes := !nodes + Treediff_tree.Node.size t1;
        let budget = Treediff_util.Budget.make ~deadline_ms:ms () in
        let exec = Treediff_util.Exec.create ~budget () in
        let slot =
          match Treediff.Diff.diff_result ~exec t1 t2 with
          | Ok { Treediff.Diff.degraded = None; _ } -> 0
          | Ok { Treediff.Diff.degraded = Some Treediff.Diff.Windowed; _ } -> 1
          | Ok { Treediff.Diff.degraded = Some Treediff.Diff.Keyed; _ } -> 2
          | Ok { Treediff.Diff.degraded = Some Treediff.Diff.Approx; _ } -> 3
          | Ok { Treediff.Diff.degraded = Some Treediff.Diff.Rebuild; _ } -> 4
          | Error _ -> 5
        in
        counts.(slot) <- counts.(slot) + 1
      done;
      Treediff_util.Table.add_row table
        (string_of_int paragraphs
        :: string_of_int (!nodes / trials)
        :: List.map
             (fun i -> Printf.sprintf "%d/%d" counts.(i) trials)
             [ 0; 1; 2; 3; 4; 5 ]))
    [ 10; 30; 100; 300; 1000 ];
  Treediff_util.Table.print_to out table;
  Printf.fprintf out "\n%!"

(* ----------------------------------------- analyzer and oracle benchmark *)

module Depgraph = Treediff_check.Depgraph
module Oracle = Treediff_check.Oracle

(* Throughput of the TD5xx dependence analyzer (ns per script op for graph
   construction, canonicalization and the full equivalence audit), the
   TD6xx oracle's cost curve against the node budget, and oracle-audited
   minimality rates over the seed corpora — the numbers behind
   EXPERIMENTS.md's minimality table. *)
let run_check_bench ?json ~out () =
  Printf.fprintf out "== Interference analyzer and minimality oracle ==\n";
  let g = Treediff_util.Prng.create 0xc0ffee in
  let config = Treediff.Config.(with_check false default) in
  (* Pipeline-produced (base tree, script) cases; dummy-rooted pairs are
     skipped so scripts address real base-tree nodes. *)
  let cases = ref [] in
  let total_ops = ref 0 in
  let made = ref 0 and tries = ref 0 in
  let n_pairs = 150 in
  while !made < n_pairs && !tries < n_pairs * 4 do
    incr tries;
    let gen = Treediff_tree.Tree.gen () in
    let t1 =
      if !tries mod 2 = 0 then
        Treediff_workload.Treegen.random_labeled g gen ~max_depth:4
          ~max_width:4
          ~labels:[| "D"; "P"; "S"; "W" |]
          ~vocab:8
      else
        Treediff_workload.Treegen.random_document g gen ~paragraphs:5 ~vocab:10
    in
    let t2 = Treediff_workload.Treegen.perturb g gen ~ops:5 t1 in
    let r = Treediff.Diff.diff ~config t1 t2 in
    if r.Treediff.Diff.dummy = None && r.Treediff.Diff.script <> [] then begin
      incr made;
      total_ops := !total_ops + List.length r.Treediff.Diff.script;
      cases := (t1, r.Treediff.Diff.script) :: !cases
    end
  done;
  let cases = !cases in
  let time_ns f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let per_op total_ns = total_ns /. float_of_int (max 1 !total_ops) in
  let reps = 5 in
  let best stage =
    let b = ref infinity in
    for _ = 1 to reps do
      let ns = time_ns (fun () -> List.iter stage cases) in
      if ns < !b then b := ns
    done;
    per_op !b
  in
  let build_ns = best (fun (t, s) -> ignore (Depgraph.build ~tree:t s)) in
  let canon_ns = best (fun (t, s) -> ignore (Depgraph.canonicalize ~tree:t s)) in
  let audit_ns = best (fun (t, s) -> ignore (Depgraph.audit ~tree:t s)) in
  let table =
    Treediff_util.Table.create ~headers:[ "analyzer stage"; "ns/op" ]
  in
  List.iter
    (fun (name, ns) ->
      Treediff_util.Table.add_row table [ name; Printf.sprintf "%.0f" ns ])
    [
      ("depgraph build", build_ns);
      ("canonicalize", canon_ns);
      ("full audit (canonicalize + prove equivalent)", audit_ns);
    ];
  Treediff_util.Table.print_to out table;
  Printf.fprintf out "(%d scripts, %d ops total)\n\n%!" (List.length cases)
    !total_ops;
  (* Oracle cost vs node budget: random tiny pairs per size class, the ub
     from a standalone pipeline diff of the pair. *)
  let budgets = [ 4; 5; 6; 7; 8 ] in
  let curve =
    List.map
      (fun b ->
        let pairs = ref [] in
        let tries = ref 0 in
        while List.length !pairs < 25 && !tries < 600 do
          incr tries;
          let gen = Treediff_tree.Tree.gen () in
          let t1 =
            Treediff_workload.Treegen.random_labeled g gen ~max_depth:3
              ~max_width:3
              ~labels:[| "D"; "P"; "S" |]
              ~vocab:4
          in
          let t2 = Treediff_workload.Treegen.perturb g gen ~ops:2 t1 in
          let sz = Treediff_tree.Node.size in
          if sz t1 <= b && sz t2 <= b && sz t1 >= 2 then begin
            let r = Treediff.Diff.diff ~config t1 t2 in
            if r.Treediff.Diff.dummy = None then
              pairs :=
                (t1, t2, Treediff_edit.Script.unweighted r.Treediff.Diff.measure)
                :: !pairs
          end
        done;
        let pairs = !pairs in
        let proved = ref 0 and unproven = ref 0 in
        let ns =
          time_ns (fun () ->
              List.iter
                (fun (t1, t2, ub) ->
                  match Oracle.search ~max_states:100_000 ~ub t1 t2 with
                  | Oracle.Proved _ -> incr proved
                  | Oracle.Unproven _ -> incr unproven)
                pairs)
        in
        (b, List.length pairs, !proved, !unproven,
         ns /. float_of_int (max 1 (List.length pairs))))
      budgets
  in
  let otable =
    Treediff_util.Table.create
      ~headers:[ "node budget"; "pairs"; "proved"; "unproven"; "time/pair" ]
  in
  List.iter
    (fun (b, n, p, u, ns) ->
      Treediff_util.Table.add_row otable
        [
          string_of_int b; string_of_int n; string_of_int p; string_of_int u;
          (if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else Printf.sprintf "%.1f us" (ns /. 1e3));
        ])
    curve;
  Treediff_util.Table.print_to out otable;
  Printf.fprintf out "\n%!";
  (* Oracle-audited minimality rate on the seed corpora. *)
  let corpora =
    [
      ("docgen-small", Treediff_workload.Docgen.small, 8, 30);
      ("docgen-medium", Treediff_workload.Docgen.medium, 12, 10);
    ]
  in
  let minimality =
    List.map
      (fun (name, profile, actions, pairs) ->
        let acc = ref (0, 0, 0, 0) in
        for _ = 1 to pairs do
          let gen = Treediff_tree.Tree.gen () in
          let doc = Treediff_workload.Docgen.generate g gen profile in
          let doc', _ =
            Treediff_workload.Mutate.mutate g gen doc ~actions
          in
          let r = Treediff.Diff.diff ~config doc doc' in
          let report =
            Treediff.Oracle_audit.run ~matching:r.Treediff.Diff.matching
              ~t1:doc ~t2:doc' ()
          in
          let a, p, n, u = !acc in
          acc :=
            ( a + report.Treediff.Oracle_audit.audited,
              p + report.Treediff.Oracle_audit.proved_minimal,
              n + report.Treediff.Oracle_audit.non_minimal,
              u + report.Treediff.Oracle_audit.unproven )
        done;
        (name, pairs, !acc))
      corpora
  in
  let mtable =
    Treediff_util.Table.create
      ~headers:
        [
          "corpus"; "tree pairs"; "subtrees audited"; "proved minimal";
          "non-minimal"; "unproven"; "minimality rate";
        ]
  in
  List.iter
    (fun (name, pairs, (a, p, n, u)) ->
      Treediff_util.Table.add_row mtable
        [
          name; string_of_int pairs; string_of_int a; string_of_int p;
          string_of_int n; string_of_int u;
          (if a = 0 then "n/a"
           else Printf.sprintf "%.1f%%" (100. *. float_of_int p /. float_of_int a));
        ])
    minimality;
  Treediff_util.Table.print_to out mtable;
  Printf.fprintf out "\n%!";
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    json_header oc (Filename.remove_extension (Filename.basename path));
    Printf.fprintf oc "  \"results\": [";
    let rows =
      [
        ("check/depgraph-build-ns-op", build_ns);
        ("check/canonicalize-ns-op", canon_ns);
        ("check/audit-ns-op", audit_ns);
      ]
      @ List.map
          (fun (b, _, _, _, ns) ->
            (Printf.sprintf "check/oracle-budget-%d-ns-pair" b, ns))
          curve
    in
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "%s\n    { \"name\": %S, \"ns_per_run\": %.2f }"
          (if i > 0 then "," else "")
          name ns)
      rows;
    Printf.fprintf oc "\n  ],\n";
    Printf.fprintf oc "  \"minimality\": [";
    List.iteri
      (fun i (name, pairs, (a, p, n, u)) ->
        Printf.fprintf oc
          "%s\n    { \"corpus\": %S, \"tree_pairs\": %d, \"audited\": %d, \
           \"proved_minimal\": %d, \"non_minimal\": %d, \"unproven\": %d }"
          (if i > 0 then "," else "")
          name pairs a p n u)
      minimality;
    Printf.fprintf oc "\n  ]\n}\n";
    close_out oc;
    Printf.fprintf out "wrote %s\n" path

(* ------------------------------------------------------ service benchmark *)

module Server = Treediff_serve.Server
module Client = Treediff_serve.Client
module Protocol = Treediff_serve.Protocol
module Sjson = Treediff_serve.Json

(* Open-loop load generation against an in-process daemon.  Closed-loop
   calibration first measures the full-quality service time; the open-loop
   phases then offer 0.5x / 1x / 2x that rate on one pipelined connection —
   the writer sends on schedule regardless of responses (a reader domain
   drains them), so queueing at the server is real, not an artifact of the
   client waiting.  A strict-admission probe (degradation disabled) then
   offers 2x to force typed [overloaded] rejects, and a crash segment
   verifies the daemon answers everything sent after a handler crash. *)

type serve_phase = {
  sp_label : string;
  sp_offered : float;  (* target req/s *)
  sp_achieved : float;  (* send rate actually sustained *)
  sp_requests : int;
  sp_ok : int;  (* full-quality answers *)
  sp_degraded : int;  (* forced approx/flat rungs *)
  sp_cached : int;  (* cache hits (subset of ok) *)
  sp_overloaded : int;
  sp_shed : int;  (* typed deadline answers *)
  sp_failed : int;  (* other typed errors *)
  sp_unanswered : int;
  sp_p50_ms : float;
  sp_p99_ms : float;
}

let serve_start_server config =
  let port = Atomic.make 0 in
  let dom =
    Domain.spawn (fun () ->
        Server.run ~config ~on_listen:(fun p -> Atomic.set port p) ())
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  if Atomic.get port = 0 then failwith "bench serve: server did not listen";
  (dom, Atomic.get port)

let serve_shutdown ~port =
  match Client.connect ~host:"127.0.0.1" ~port with
  | Error _ -> ()
  | Ok c ->
    ignore
      (Client.call c
         { Protocol.id = 999_999; verb = "shutdown"; params = Sjson.Obj [] });
    Client.close c

let serve_diff_request ~id ~deadline_ms (old_s, new_s) =
  {
    Protocol.id;
    verb = "diff";
    params =
      Sjson.Obj
        [
          ("old", Sjson.Str old_s);
          ("new", Sjson.Str new_s);
          ("deadline_ms", Sjson.Num deadline_ms);
        ];
  }

let serve_gen_pairs g n =
  Array.init n (fun _ ->
      let gen = Treediff_tree.Tree.gen () in
      let doc =
        Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.small
      in
      let doc', _ = Treediff_workload.Mutate.mutate g gen doc ~actions:6 in
      (Treediff_tree.Codec.to_string doc, Treediff_tree.Codec.to_string doc'))

let serve_percentile p sorted =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(int_of_float (p *. float_of_int (n - 1)))

(* One open-loop phase: [n] requests at [rate]/s over a fresh connection.
   Requests cycle [pairs] (unique per request except a small hot set that
   exercises the cache).  Returns aggregate counters and ok-answer latency
   percentiles. *)
let serve_phase ~port ~pairs ~hot ~rate ~n ~deadline_ms label =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* Safety valves: a wedged peer surfaces as a timeout, not a hang. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 15.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 15.0;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* outcome codes: 0 ok, 1 degraded, 2 cached, 3 overloaded, 4 deadline,
     5 other typed error, 6 unanswered *)
  let reader =
    Domain.spawn (fun () ->
        let outcome = Array.make n 6 in
        let recv = Array.make n 0.0 in
        let remaining = ref n in
        (try
           while !remaining > 0 do
             match Protocol.read_frame ic with
             | Ok (Some payload) -> (
               let t = Unix.gettimeofday () in
               match Protocol.parse_response payload with
               | Ok (id, resp) when id >= 1 && id <= n ->
                 let i = id - 1 in
                 recv.(i) <- t;
                 outcome.(i) <-
                   (match resp with
                   | Protocol.Ok_resp body ->
                     if Sjson.mem_bool "cached" body = Some true then 2
                     else if
                       match Sjson.member "degraded" body with
                       | Some (Sjson.Str _) -> true
                       | Some _ | None -> false
                     then 1
                     else 0
                   | Protocol.Err_resp { kind = Protocol.Overloaded; _ } -> 3
                   | Protocol.Err_resp { kind = Protocol.Deadline; _ } -> 4
                   | Protocol.Err_resp _ -> 5);
                 decr remaining
               | Ok _ | Error _ -> decr remaining)
             | Ok None | Error _ -> remaining := 0
           done
         with Unix.Unix_error _ | Sys_error _ | End_of_file -> ());
        (outcome, recv))
  in
  let send_t = Array.make n 0.0 in
  let np = Array.length pairs in
  let nh = Array.length hot in
  let t0 = Unix.gettimeofday () in
  (try
     for i = 0 to n - 1 do
       let target = t0 +. (float_of_int i /. rate) in
       let now = Unix.gettimeofday () in
       if target > now then Unix.sleepf (target -. now);
       let pair =
         if nh > 0 && i mod 10 = 0 then hot.(i / 10 mod nh)
         else pairs.(i mod np)
       in
       send_t.(i) <- Unix.gettimeofday ();
       output_string oc
         (Protocol.encode_frame
            (Sjson.to_string
               (Protocol.request_to_json
                  (serve_diff_request ~id:(i + 1) ~deadline_ms pair))));
       flush oc
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  let outcome, recv = Domain.join reader in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let count c = Array.fold_left (fun a x -> if x = c then a + 1 else a) 0 outcome in
  let lats = ref [] in
  Array.iteri
    (fun i o ->
      if o <= 2 && recv.(i) > 0.0 && send_t.(i) > 0.0 then
        lats := ((recv.(i) -. send_t.(i)) *. 1e3) :: !lats)
    outcome;
  let lats = Array.of_list !lats in
  Array.sort compare lats;
  let span = send_t.(n - 1) -. send_t.(0) in
  {
    sp_label = label;
    sp_offered = rate;
    sp_achieved = (if span > 0.0 then float_of_int (n - 1) /. span else rate);
    sp_requests = n;
    sp_ok = count 0;
    sp_degraded = count 1;
    sp_cached = count 2;
    sp_overloaded = count 3;
    sp_shed = count 4;
    sp_failed = count 5;
    sp_unanswered = count 6;
    sp_p50_ms = serve_percentile 0.50 lats;
    sp_p99_ms = serve_percentile 0.99 lats;
  }

let run_serve_bench ?json ~out () =
  Printf.fprintf out "== Diff service under open-loop load ==\n";
  let g = Treediff_util.Prng.create 0x5e12e in
  let deadline_ms = 250.0 in
  (* Calibration: closed-loop over unique pairs on the default policy. *)
  let graceful_cfg =
    {
      Server.default_config with
      Server.port = 0;
      degrade_queue = 8;
      flat_queue = 24;
      max_queue = 48;
      cache_entries = 512;
      allow_crash = true;
    }
  in
  let dom, port = serve_start_server graceful_cfg in
  let calib_pairs = serve_gen_pairs g 48 in
  let hot = serve_gen_pairs g 8 in
  let service_ms =
    match Client.connect ~host:"127.0.0.1" ~port with
    | Error msg -> failwith ("bench serve: " ^ msg)
    | Ok c ->
      let one i pair =
        let t0 = Unix.gettimeofday () in
        (match
           Client.call c (serve_diff_request ~id:(i + 1) ~deadline_ms:1000. pair)
         with
        | Ok (Protocol.Ok_resp _) -> ()
        | Ok (Protocol.Err_resp { message; _ }) ->
          failwith ("bench serve calibration: " ^ message)
        | Error msg -> failwith ("bench serve calibration: " ^ msg));
        (Unix.gettimeofday () -. t0) *. 1e3
      in
      (* Warm the hot set into the cache while we are at it. *)
      Array.iteri (fun i p -> ignore (one i p)) hot;
      let samples = Array.mapi one calib_pairs in
      Client.close c;
      Array.sort compare samples;
      serve_percentile 0.5 samples
  in
  let saturation = Float.min 20_000.0 (Float.max 50.0 (1000.0 /. service_ms)) in
  Printf.fprintf out
    "calibration: %.3f ms median service time, %.0f req/s saturation\n%!"
    service_ms saturation;
  let phase_n rate =
    int_of_float (Float.min 1200.0 (Float.max 300.0 (rate *. 1.2)))
  in
  let run_mult label mult =
    let rate = saturation *. mult in
    let n = phase_n rate in
    let pairs = serve_gen_pairs g n in
    serve_phase ~port ~pairs ~hot ~rate ~n ~deadline_ms label
  in
  let phases =
    [ run_mult "0.5x" 0.5; run_mult "1x" 1.0; run_mult "2x" 2.0 ]
  in
  (* Crash isolation: a handler crash answers typed [internal]; everything
     sent afterwards is still answered. *)
  let crash_answer, after_ok, after_total =
    match Client.connect ~host:"127.0.0.1" ~port with
    | Error msg -> failwith ("bench serve: " ^ msg)
    | Ok c ->
      let answer =
        match
          Client.call c { Protocol.id = 1; verb = "crash"; params = Sjson.Obj [] }
        with
        | Ok (Protocol.Err_resp { kind = Protocol.Internal; _ }) -> "internal"
        | Ok (Protocol.Err_resp { kind; _ }) -> Protocol.error_kind_name kind
        | Ok (Protocol.Ok_resp _) -> "ok?!"
        | Error msg -> "transport: " ^ msg
      in
      let after = serve_gen_pairs g 40 in
      let ok = ref 0 in
      Array.iteri
        (fun i pair ->
          match
            Client.call c (serve_diff_request ~id:(i + 2) ~deadline_ms:1000. pair)
          with
          | Ok (Protocol.Ok_resp _) -> incr ok
          | Ok (Protocol.Err_resp _) | Error _ -> ())
        after;
      Client.close c;
      (answer, !ok, Array.length after)
  in
  serve_shutdown ~port;
  Domain.join dom;
  (* Strict-admission probe: degradation disabled, so 2x the full-quality
     saturation must overflow the queue and draw typed [overloaded]
     rejects (the graceful policy above absorbs 2x by degrading first). *)
  let strict_cfg =
    {
      graceful_cfg with
      Server.max_queue = 32;
      degrade_queue = 33;
      flat_queue = 33;
      cache_entries = 0;
      allow_crash = false;
    }
  in
  let sdom, sport = serve_start_server strict_cfg in
  let probe =
    let rate = saturation *. 2.0 in
    let n = phase_n rate in
    let pairs = serve_gen_pairs g n in
    serve_phase ~port:sport ~pairs ~hot:[||] ~rate ~n ~deadline_ms
      "strict-2x"
  in
  let alive_after =
    match Client.connect ~host:"127.0.0.1" ~port:sport with
    | Error _ -> false
    | Ok c ->
      let r =
        Client.call c { Protocol.id = 7; verb = "ping"; params = Sjson.Obj [] }
      in
      Client.close c;
      (match r with Ok (Protocol.Ok_resp _) -> true | _ -> false)
  in
  serve_shutdown ~port:sport;
  Domain.join sdom;
  let all = phases @ [ probe ] in
  let table =
    Treediff_util.Table.create
      ~headers:
        [
          "phase"; "offered"; "sent"; "ok"; "degraded"; "cached"; "overloaded";
          "shed"; "p50"; "p99";
        ]
  in
  List.iter
    (fun p ->
      Treediff_util.Table.add_row table
        [
          p.sp_label;
          Printf.sprintf "%.0f/s" p.sp_offered;
          Printf.sprintf "%.0f/s" p.sp_achieved;
          string_of_int p.sp_ok;
          string_of_int p.sp_degraded;
          string_of_int p.sp_cached;
          string_of_int p.sp_overloaded;
          string_of_int p.sp_shed;
          Printf.sprintf "%.2f ms" p.sp_p50_ms;
          Printf.sprintf "%.2f ms" p.sp_p99_ms;
        ])
    all;
  Treediff_util.Table.print_to out table;
  Printf.fprintf out
    "strict 2x probe: %d overloaded / %d sent, alive after: %b\n"
    probe.sp_overloaded probe.sp_requests alive_after;
  Printf.fprintf out "crash isolation: crash answered %s; %d/%d diffs ok after\n\n%!"
    crash_answer after_ok after_total;
  match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    json_header oc (Filename.remove_extension (Filename.basename path));
    Printf.fprintf oc
      "  \"serve\": {\n\
      \    \"deadline_ms\": %.0f,\n\
      \    \"calibration\": { \"service_ms\": %.4f, \"saturation_rps\": %.1f },\n"
      deadline_ms service_ms saturation;
    Printf.fprintf oc "    \"phases\": [";
    List.iteri
      (fun i p ->
        Printf.fprintf oc
          "%s\n      { \"label\": %S, \"offered_rps\": %.1f, \
           \"achieved_rps\": %.1f, \"requests\": %d, \"ok\": %d, \
           \"degraded\": %d, \"cache_hits\": %d, \"overloaded\": %d, \
           \"shed_deadline\": %d, \"failed\": %d, \"unanswered\": %d, \
           \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
           \"p99_within_deadline\": %b }"
          (if i > 0 then "," else "")
          p.sp_label p.sp_offered p.sp_achieved p.sp_requests p.sp_ok
          p.sp_degraded p.sp_cached p.sp_overloaded p.sp_shed p.sp_failed
          p.sp_unanswered p.sp_p50_ms p.sp_p99_ms
          (p.sp_p99_ms <= deadline_ms))
      all;
    Printf.fprintf oc
      "\n    ],\n\
      \    \"strict_probe_alive_after\": %b,\n\
      \    \"crash_isolation\": { \"crash_answer\": %S, \
       \"answered_after_crash\": %d, \"requests_after_crash\": %d }\n\
      \  },\n"
      alive_after crash_answer after_ok after_total;
    Printf.fprintf oc "  \"results\": [";
    let rows =
      ("serve/closed-loop-service", service_ms *. 1e6)
      :: List.concat_map
           (fun p ->
             [
               (Printf.sprintf "serve/rate-%s-p50" p.sp_label, p.sp_p50_ms *. 1e6);
               (Printf.sprintf "serve/rate-%s-p99" p.sp_label, p.sp_p99_ms *. 1e6);
             ])
           all
    in
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "%s\n    { \"name\": %S, \"ns_per_run\": %.2f }"
          (if i > 0 then "," else "")
          name ns)
      rows;
    Printf.fprintf oc "\n  ]\n}\n";
    close_out oc;
    Printf.fprintf out "wrote %s\n" path

let usage () =
  print_endline
    "usage: main.exe [EXPERIMENT...] [--bechamel] [--json OUT] [--budget-ms MS]";
  print_endline "  --json OUT      with --bechamel or store, write ns/run estimates to OUT";
  print_endline "                  (human tables move to stderr so OUT-producing runs";
  print_endline "                   keep stdout machine-parseable)";
  print_endline
    "  --budget-ms MS  tabulate ladder-rung frequency under an MS-millisecond deadline";
  print_endline "experiments (default: all):";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-12s %s\n" name descr) experiments;
  print_endline
    "  store        delta-chain archive: commit latency, materialization vs\n\
    \               depth with/without checkpoints, bytes per version";
  print_endline "               (runs alone; with --json, writes BENCH_store.json rows)";
  print_endline
    "  store-scale  sharded corpus store at scale: a synthetic 10k-doc x\n\
    \               100-version (1M total) bulk ingest — commits/s, bytes per\n\
    \               version, cold-cache materialize p99 and ingest scaling\n\
    \               across --jobs with a byte-identity check (--smoke: 100\n\
    \               docs, the CI gate)";
  print_endline
    "               (runs alone; with --json, writes BENCH_store_scale.json rows)";
  print_endline
    "  batch        domain-parallel batch diffing over the fig13 corpora at\n\
    \               jobs 1/2/4 (or --jobs N), with a cross-jobs identity check";
  print_endline "               (runs alone; with --json, writes BENCH_parallel.json rows)";
  print_endline
    "  sim          similarity layer: exact FastMatch vs the LSH prefilter vs\n\
    \               the greedy approx matcher on the adversarial long-chain\n\
    \               corpus, plus precision/recall tables over every corpus";
  print_endline "               (runs alone; with --json, writes BENCH_sim.json rows)";
  print_endline
    "  check        interference analyzer ns/op, the minimality oracle's\n\
    \               node-budget cost curve, and oracle-audited minimality\n\
    \               rates over the seed corpora";
  print_endline "               (runs alone; with --json, writes BENCH_check.json rows)";
  print_endline
    "  serve        open-loop load against an in-process daemon at 0.5x/1x/2x\n\
    \               saturation, a strict-admission overload probe, and a\n\
    \               crash-isolation segment";
  print_endline "               (runs alone; with --json, writes BENCH_serve.json rows)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let bech = List.mem "--bechamel" args in
  let rec take_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | "--json" :: [] ->
      prerr_endline "--json requires an output path";
      exit 2
    | a :: rest -> take_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, args = take_json [] args in
  let rec take_budget acc = function
    | "--budget-ms" :: ms :: rest -> (
      match float_of_string_opt ms with
      | Some ms -> (Some ms, List.rev_append acc rest)
      | None ->
        prerr_endline "--budget-ms requires a number of milliseconds";
        exit 2)
    | "--budget-ms" :: [] ->
      prerr_endline "--budget-ms requires a number of milliseconds";
      exit 2
    | a :: rest -> take_budget (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let budget_ms, args = take_budget [] args in
  let rec take_jobs acc = function
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> (Some n, List.rev_append acc rest)
      | _ ->
        prerr_endline "--jobs requires a positive integer";
        exit 2)
    | "--jobs" :: [] ->
      prerr_endline "--jobs requires a positive integer";
      exit 2
    | a :: rest -> take_jobs (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let jobs, args = take_jobs [] args in
  let smoke = List.mem "--smoke" args in
  let args = List.filter (fun a -> a <> "--smoke") args in
  let names = List.filter (fun a -> a <> "--bechamel") args in
  (* With --json, stdout is reserved for machine-readable consumers: every
     human table and banner this harness prints itself moves to stderr. *)
  let out = if json <> None then stderr else stdout in
  if List.mem "--help" names || List.mem "-h" names then usage ()
  else begin
    match budget_ms with
    | Some ms ->
      run_budget ~out ms;
      if bech then run_bechamel ?json ~out ()
    | None ->
      if names = [ "store" ] then run_store ?json ~out ()
      else if names = [ "store-scale" ] then
        run_store_scale ?json ~out ~jobs ~smoke ()
      else if names = [ "batch" ] then run_batch_bench ?json ~out ~jobs ()
      else if names = [ "sim" ] then run_sim ?json ~out ()
      else if names = [ "check" ] then run_check_bench ?json ~out ()
      else if names = [ "serve" ] then run_serve_bench ?json ~out ()
      else begin
        let selected =
          if names = [] then experiments
          else
            List.filter_map
              (fun n ->
                match List.find_opt (fun (name, _, _) -> name = n) experiments with
                | Some e -> Some e
                | None ->
                  Printf.eprintf "unknown experiment %S (try --help)\n" n;
                  None)
              names
        in
        List.iter (fun (_, _, run) -> run ()) selected;
        if bech || json <> None then run_bechamel ?json ~out ()
      end
  end
