(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8 and Appendix A), plus the complexity-claim experiments of
   §2/§5.  Run with no arguments for all experiment tables; name experiments
   to run a subset; add --bechamel for wall-clock micro-benchmarks (one
   Bechamel test per table/figure). *)

module E = Treediff_experiments

let experiments =
  [
    ("fig13a", "Figure 13(a): weighted vs unweighted edit distance",
     fun () -> ignore (E.Fig13a.run ()));
    ("fig13b", "Figure 13(b): FastMatch comparisons vs analytic bound",
     fun () -> ignore (E.Fig13b.run ()));
    ("table1", "Table 1: mismatched-paragraph bound vs threshold t",
     fun () -> ignore (E.Table1.run ()));
    ("sample", "Appendix A: LaDiff sample run (Figures 14-16, Table 2)",
     fun () -> ignore (E.Sample_run.run ()));
    ("scaling", "Scaling: ours vs Zhang-Shasha",
     fun () -> ignore (E.Scaling.run ()));
    ("quality", "Delta quality: ours vs flat diff vs Zhang-Shasha",
     fun () -> ignore (E.Quality.run ()));
    ("optimality", "Optimality: matcher agreement, ablation, C.2 bound",
     fun () -> ignore (E.Optimality.run ()));
    ("ablation", "Ablations: match threshold t sweep, A(k) scan window sweep",
     fun () -> ignore (E.Ablation.run ()));
  ]

(* ------------------------------------------------- Bechamel micro-benches *)

let bechamel_tests () =
  let open Bechamel in
  (* Shared inputs, built once, outside the timed region. *)
  let g = Treediff_util.Prng.create 4242 in
  let gen = Treediff_tree.Tree.gen () in
  let doc = Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.medium in
  let doc2, _ = Treediff_workload.Mutate.mutate g gen doc ~actions:15 in
  let small = Treediff_workload.Docgen.generate g gen Treediff_workload.Docgen.small in
  let small2, _ = Treediff_workload.Mutate.mutate g gen small ~actions:8 in
  let config = Treediff_doc.Doc_tree.config in
  let criteria = Treediff_doc.Doc_tree.criteria in
  let old_src = E.Sample_run.old_doc and new_src = E.Sample_run.new_doc in
  let latex1 = Treediff_doc.Latex_parser.print doc
  and latex2 = Treediff_doc.Latex_parser.print doc2 in
  [
    Test.make ~name:"fig13a/diff-medium-pair"
      (Staged.stage (fun () -> ignore (Treediff.Diff.diff ~config doc doc2)));
    Test.make ~name:"fig13b/fastmatch-only"
      (Staged.stage (fun () ->
           let ctx = Treediff_matching.Criteria.ctx criteria ~t1:doc ~t2:doc2 in
           ignore (Treediff_matching.Fast_match.run ctx)));
    Test.make ~name:"table1/mc3-violation-scan"
      (Staged.stage (fun () ->
           let ctx = Treediff_matching.Criteria.ctx criteria ~t1:small ~t2:small2 in
           ignore (Treediff_matching.Criteria.mc3_violations ctx)));
    Test.make ~name:"sample/ladiff-end-to-end"
      (Staged.stage (fun () -> ignore (Treediff_doc.Ladiff.run ~old_src ~new_src ())));
    Test.make ~name:"scaling/ours-small-pair"
      (Staged.stage (fun () -> ignore (Treediff.Diff.diff ~config small small2)));
    Test.make ~name:"scaling/zhang-shasha-small-pair"
      (Staged.stage (fun () -> ignore (Treediff_zs.Zhang_shasha.mapping small small2)));
    Test.make ~name:"quality/flat-line-diff"
      (Staged.stage (fun () -> ignore (Treediff_textdiff.Line_diff.diff latex1 latex2)));
    Test.make ~name:"quality/word-compare"
      (Staged.stage (fun () ->
           ignore
             (Treediff_textdiff.Word_compare.distance
                "the quick brown fox jumps over the lazy dog near the river bank"
                "the quick brown fox leaps over a lazy dog near the river")));
    Test.make ~name:"ablation/levenshtein"
      (Staged.stage (fun () ->
           ignore (Treediff_textdiff.Levenshtein.normalized "configuration" "confabulation")));
    Test.make ~name:"ablation/lcs-only-window-0"
      (Staged.stage (fun () ->
           let config = { config with Treediff.Config.scan_window = Some 0 } in
           ignore (Treediff.Diff.diff ~config small small2)));
  ]

(* Per-benchmark ns/run estimates as a machine-readable trajectory file.
   Schema: {"label": <basename>, "unit": "ns/run",
            "results": [{"name": ..., "ns_per_run": ...}, ...]}. *)
let write_json path rows =
  let oc = open_out path in
  let label = Filename.remove_extension (Filename.basename path) in
  Printf.fprintf oc "{\n  \"label\": %S,\n  \"unit\": \"ns/run\",\n  \"results\": [" label;
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "%s\n    { \"name\": %S, \"ns_per_run\": %s }"
        (if i > 0 then "," else "")
        name
        (match est with Some e -> Printf.sprintf "%.2f" e | None -> "null"))
    rows;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let run_bechamel ?json () =
  let open Bechamel in
  print_endline "== Bechamel wall-clock benchmarks ==";
  let tests = Test.make_grouped ~name:"treediff" (bechamel_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let estimates =
    List.map
      (fun (name, r) ->
        match Analyze.OLS.estimates r with
        | Some (est :: _) -> (name, Some est)
        | Some [] | None -> (name, None))
      rows
  in
  let table = Treediff_util.Table.create ~headers:[ "benchmark"; "time/run" ] in
  List.iter
    (fun (name, est) ->
      let cell =
        match est with
        | Some est ->
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        | None -> "n/a"
      in
      Treediff_util.Table.add_row table [ name; cell ])
    estimates;
  Treediff_util.Table.print table;
  print_newline ();
  match json with None -> () | Some path -> write_json path estimates

(* ------------------------------------------------ degradation frequency *)

(* How often does a wall-clock budget push the pipeline off the primary
   algorithm?  Diff a corpus of growing documents under the given deadline
   and tabulate which ladder rung produced each result. *)
let run_budget ms =
  Printf.printf "== Degradation frequency under a %.3g ms budget ==\n" ms;
  let g = Treediff_util.Prng.create 97 in
  let table =
    Treediff_util.Table.create
      ~headers:[ "paragraphs"; "nodes"; "primary"; "windowed"; "keyed"; "rebuild"; "failed" ]
  in
  List.iter
    (fun paragraphs ->
      let counts = [| 0; 0; 0; 0; 0 |] in
      let nodes = ref 0 in
      let trials = 10 in
      for _ = 1 to trials do
        let gen = Treediff_tree.Tree.gen () in
        let t1 =
          Treediff_workload.Treegen.random_document g gen ~paragraphs ~vocab:60
        in
        let t2 = Treediff_workload.Treegen.perturb g gen ~ops:(paragraphs / 2) t1 in
        nodes := !nodes + Treediff_tree.Node.size t1;
        let budget = Treediff_util.Budget.make ~deadline_ms:ms () in
        let slot =
          match Treediff.Diff.diff_result ~budget t1 t2 with
          | Ok { Treediff.Diff.degraded = None; _ } -> 0
          | Ok { Treediff.Diff.degraded = Some Treediff.Diff.Windowed; _ } -> 1
          | Ok { Treediff.Diff.degraded = Some Treediff.Diff.Keyed; _ } -> 2
          | Ok { Treediff.Diff.degraded = Some Treediff.Diff.Rebuild; _ } -> 3
          | Error _ -> 4
        in
        counts.(slot) <- counts.(slot) + 1
      done;
      Treediff_util.Table.add_row table
        (string_of_int paragraphs
        :: string_of_int (!nodes / trials)
        :: List.map
             (fun i -> Printf.sprintf "%d/%d" counts.(i) trials)
             [ 0; 1; 2; 3; 4 ]))
    [ 10; 30; 100; 300; 1000 ];
  Treediff_util.Table.print table;
  print_newline ()

let usage () =
  print_endline
    "usage: main.exe [EXPERIMENT...] [--bechamel] [--json OUT] [--budget-ms MS]";
  print_endline "  --json OUT      with --bechamel, also write ns/run estimates to OUT";
  print_endline
    "  --budget-ms MS  tabulate ladder-rung frequency under an MS-millisecond deadline";
  print_endline "experiments (default: all):";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-12s %s\n" name descr) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let bech = List.mem "--bechamel" args in
  let rec take_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | "--json" :: [] ->
      prerr_endline "--json requires an output path";
      exit 2
    | a :: rest -> take_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, args = take_json [] args in
  let rec take_budget acc = function
    | "--budget-ms" :: ms :: rest -> (
      match float_of_string_opt ms with
      | Some ms -> (Some ms, List.rev_append acc rest)
      | None ->
        prerr_endline "--budget-ms requires a number of milliseconds";
        exit 2)
    | "--budget-ms" :: [] ->
      prerr_endline "--budget-ms requires a number of milliseconds";
      exit 2
    | a :: rest -> take_budget (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let budget_ms, args = take_budget [] args in
  let names = List.filter (fun a -> a <> "--bechamel") args in
  if List.mem "--help" names || List.mem "-h" names then usage ()
  else begin
    match budget_ms with
    | Some ms -> run_budget ms
    | None ->
      let selected =
        if names = [] then experiments
        else
          List.filter_map
            (fun n ->
              match List.find_opt (fun (name, _, _) -> name = n) experiments with
              | Some e -> Some e
              | None ->
                Printf.printf "unknown experiment %S (try --help)\n" n;
                None)
            names
      in
      List.iter (fun (_, _, run) -> run ()) selected;
      if bech || json <> None then run_bechamel ?json ()
  end
