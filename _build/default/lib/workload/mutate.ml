module P = Treediff_util.Prng
module Tree = Treediff_tree.Tree
module Node = Treediff_tree.Node
module Doc = Treediff_doc.Doc_tree

type mix = {
  sentence_update : float;
  sentence_insert : float;
  sentence_delete : float;
  sentence_move : float;
  paragraph_insert : float;
  paragraph_delete : float;
  paragraph_move : float;
  section_shuffle : float;
}

(* Calibrated so the weighted/unweighted distance ratio e/d of detected
   scripts lands in the ballpark the paper reports for real paper revisions
   (≈ 3.4): authors move whole paragraphs and sections around, and each such
   move carries weight |x| in e while costing a single operation in d. *)
let revision_mix =
  {
    sentence_update = 0.26;
    sentence_insert = 0.12;
    sentence_delete = 0.09;
    sentence_move = 0.08;
    paragraph_insert = 0.05;
    paragraph_delete = 0.04;
    paragraph_move = 0.19;
    section_shuffle = 0.17;
  }

let move_heavy_mix =
  {
    sentence_update = 0.10;
    sentence_insert = 0.05;
    sentence_delete = 0.05;
    sentence_move = 0.40;
    paragraph_insert = 0.03;
    paragraph_delete = 0.02;
    paragraph_move = 0.30;
    section_shuffle = 0.05;
  }

type report = { applied : (string * int) list; actions : int }

type action =
  | Sentence_update
  | Sentence_insert
  | Sentence_delete
  | Sentence_move
  | Paragraph_insert
  | Paragraph_delete
  | Paragraph_move
  | Section_shuffle

let action_name = function
  | Sentence_update -> "sentence-update"
  | Sentence_insert -> "sentence-insert"
  | Sentence_delete -> "sentence-delete"
  | Sentence_move -> "sentence-move"
  | Paragraph_insert -> "paragraph-insert"
  | Paragraph_delete -> "paragraph-delete"
  | Paragraph_move -> "paragraph-move"
  | Section_shuffle -> "section-shuffle"

let draw g mix =
  let weighted =
    [
      (Sentence_update, mix.sentence_update);
      (Sentence_insert, mix.sentence_insert);
      (Sentence_delete, mix.sentence_delete);
      (Sentence_move, mix.sentence_move);
      (Paragraph_insert, mix.paragraph_insert);
      (Paragraph_delete, mix.paragraph_delete);
      (Paragraph_move, mix.paragraph_move);
      (Section_shuffle, mix.section_shuffle);
    ]
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  let x = P.float g *. total in
  let rec pick acc = function
    | [ (a, _) ] -> a
    | (a, w) :: rest -> if x < acc +. w then a else pick (acc +. w) rest
    | [] -> assert false
  in
  pick 0.0 weighted

let with_label l t =
  List.filter (fun (n : Node.t) -> String.equal n.label l) (Node.preorder t)

let pick_opt g = function [] -> None | l -> Some (P.pick g (Array.of_list l))

(* Reword roughly a quarter of a sentence's words: stays within the leaf
   matching threshold (criterion 1 with f = 0.5). *)
let reword g s =
  let words = String.split_on_char ' ' s in
  let n = List.length words in
  if n = 0 then s
  else
    let budget = max 1 (n / 4) in
    let victims = Array.init n (fun i -> i) in
    P.shuffle g victims;
    let chosen = Array.sub victims 0 (min budget n) in
    String.concat " "
      (List.mapi
         (fun i w -> if Array.exists (fun v -> v = i) chosen then P.pick g Docgen.vocabulary else w)
         words)

let block_containers t =
  List.filter
    (fun (n : Node.t) ->
      List.mem n.label [ Doc.section; Doc.subsection; Doc.item ])
    (Node.preorder t)

(* Index among the container's children at which a paragraph-like block can
   be inserted: before any subsections (sections keep blocks first). *)
let block_slot g (container : Node.t) =
  let children = Node.children container in
  let nblocks =
    List.length
      (List.filter
         (fun (c : Node.t) -> not (String.equal c.Node.label Doc.subsection))
         children)
  in
  P.int g (nblocks + 1)

let apply_action g gen t action =
  match action with
  | Sentence_update -> (
    match pick_opt g (with_label Doc.sentence t) with
    | Some s ->
      s.Node.value <- reword g s.Node.value;
      true
    | None -> false)
  | Sentence_insert -> (
    match pick_opt g (with_label Doc.paragraph t) with
    | Some p ->
      Node.insert_child p
        (P.int g (Node.child_count p + 1))
        (Tree.leaf gen Doc.sentence (Docgen.sentence g 12));
      true
    | None -> false)
  | Sentence_delete -> (
    let candidates =
      List.filter
        (fun (s : Node.t) ->
          match s.Node.parent with Some p -> Node.child_count p >= 2 | None -> false)
        (with_label Doc.sentence t)
    in
    match pick_opt g candidates with
    | Some s ->
      Node.detach s;
      true
    | None -> false)
  | Sentence_move -> (
    match (pick_opt g (with_label Doc.sentence t), pick_opt g (with_label Doc.paragraph t)) with
    | Some s, Some p when (match s.Node.parent with Some q -> Node.child_count q >= 2 | None -> false) ->
      Node.detach s;
      Node.insert_child p (P.int g (Node.child_count p + 1)) s;
      true
    | _ -> false)
  | Paragraph_insert -> (
    match pick_opt g (block_containers t) with
    | Some c ->
      let sentences = 1 + P.int g 4 in
      let p =
        Tree.node gen Doc.paragraph
          (List.init sentences (fun _ -> Tree.leaf gen Doc.sentence (Docgen.sentence g 12)))
      in
      Node.insert_child c (block_slot g c) p;
      true
    | None -> false)
  | Paragraph_delete -> (
    let candidates =
      List.filter
        (fun (p : Node.t) ->
          match p.Node.parent with Some q -> Node.child_count q >= 2 | None -> false)
        (with_label Doc.paragraph t)
    in
    match pick_opt g candidates with
    | Some p ->
      Node.detach p;
      true
    | None -> false)
  | Paragraph_move -> (
    let paras =
      List.filter
        (fun (p : Node.t) ->
          match p.Node.parent with Some q -> Node.child_count q >= 2 | None -> false)
        (with_label Doc.paragraph t)
    in
    match pick_opt g paras with
    | Some p -> (
      let containers =
        List.filter
          (fun (c : Node.t) -> not (Node.is_ancestor p c) && c.Node.id <> p.Node.id)
          (block_containers t)
      in
      match pick_opt g containers with
      | Some c ->
        Node.detach p;
        Node.insert_child c (block_slot g c) p;
        true
      | None -> false)
    | None -> false)
  | Section_shuffle -> (
    let sections = Node.children t in
    let n = List.length sections in
    if n < 2 then false
    else begin
      let i = P.int g (n - 1) in
      let s = List.nth sections (i + 1) in
      Node.detach s;
      Node.insert_child t i s;
      true
    end)

let mutate ?(mix = revision_mix) g gen doc ~actions =
  let t = Tree.relabel_ids gen doc in
  let tally = Hashtbl.create 8 in
  let applied = ref 0 in
  let attempts = ref 0 in
  while !applied < actions && !attempts < actions * 20 do
    incr attempts;
    let action = draw g mix in
    if apply_action g gen t action then begin
      incr applied;
      let name = action_name action in
      Hashtbl.replace tally name ((try Hashtbl.find tally name with Not_found -> 0) + 1)
    end
  done;
  let report =
    {
      applied =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      actions = !applied;
    }
  in
  (t, report)
