(** Synthetic structured-document generator.

    Stands in for the paper's private corpora of versioned conference papers
    (§8).  Documents follow the §7 schema (Document/Section/Subsection/
    Paragraph/List/Item/Sentence); sentences are random draws from a
    moderately large vocabulary, so distinct sentences almost never share
    half their words — i.e. Matching Criterion 3 holds by construction,
    matching the paper's observation that real prose rarely violates it.
    A [duplicate_rate] knob reintroduces near-duplicate sentences to study
    MC3 violations (Table 1). *)

type profile = {
  sections : int;           (** top-level sections *)
  subsections_per : int;    (** max subsections per section (0 = none) *)
  paragraphs_per : int;     (** max paragraphs per (sub)section, ≥ 1 *)
  sentences_per : int;      (** max sentences per paragraph, ≥ 1 *)
  words_per : int;          (** max words per sentence, ≥ 3 *)
  list_rate : float;        (** probability a block is a list instead of a paragraph *)
  duplicate_rate : float;   (** probability a sentence is a near-copy of an earlier one *)
}

(** ≈ 20–60 sentences *)
val small : profile

(** ≈ 100–180 sentences *)
val medium : profile

(** ≈ 350–550 sentences *)
val large : profile

val generate :
  Treediff_util.Prng.t -> Treediff_tree.Tree.gen -> profile -> Treediff_tree.Node.t
(** A fresh random document tree. *)

val sentence : Treediff_util.Prng.t -> int -> string
(** A random sentence of at most the given word count (≥ 3). *)

val vocabulary : string array
(** The word pool sentences draw from (shared with the mutator so reworded
    sentences stay in-distribution). *)
