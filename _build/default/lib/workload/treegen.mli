(** Generic random trees and perturbations — the raw material for property
    tests, independent of the document schema. *)

val random_labeled :
  Treediff_util.Prng.t ->
  Treediff_tree.Tree.gen ->
  max_depth:int ->
  max_width:int ->
  labels:string array ->
  vocab:int ->
  Treediff_tree.Node.t
(** A random tree; each node's label is drawn from [labels] (indexed by depth,
    wrapping, so the acyclic-labels condition holds), values from a [vocab]-
    sized pool (small pools produce duplicates — MC3 stress). *)

val random_document :
  Treediff_util.Prng.t ->
  Treediff_tree.Tree.gen ->
  paragraphs:int ->
  vocab:int ->
  Treediff_tree.Node.t
(** Flat D/P/S document with values ["s<k>"] drawn from a [vocab]-sized pool. *)

val perturb :
  Treediff_util.Prng.t ->
  Treediff_tree.Tree.gen ->
  ?ops:int ->
  Treediff_tree.Node.t ->
  Treediff_tree.Node.t
(** A fresh-id copy perturbed by random shuffles, subtree moves, leaf
    updates, inserts and deletes — exercising every phase of EditScript. *)
