module P = Treediff_util.Prng
module Tree = Treediff_tree.Tree
module Node = Treediff_tree.Node
module Doc = Treediff_doc.Doc_tree

type profile = {
  sections : int;
  subsections_per : int;
  paragraphs_per : int;
  sentences_per : int;
  words_per : int;
  list_rate : float;
  duplicate_rate : float;
}

let small =
  { sections = 3; subsections_per = 0; paragraphs_per = 4; sentences_per = 5;
    words_per = 12; list_rate = 0.1; duplicate_rate = 0.0 }

let medium =
  { sections = 6; subsections_per = 2; paragraphs_per = 5; sentences_per = 6;
    words_per = 14; list_rate = 0.12; duplicate_rate = 0.0 }

let large =
  { sections = 9; subsections_per = 3; paragraphs_per = 6; sentences_per = 7;
    words_per = 14; list_rate = 0.12; duplicate_rate = 0.0 }

let vocabulary =
  [|
    "algorithm"; "analysis"; "approach"; "architecture"; "baseline"; "behavior";
    "benchmark"; "buffer"; "cache"; "change"; "cluster"; "comparison"; "complexity";
    "computation"; "configuration"; "consistency"; "constraint"; "correctness"; "cost";
    "data"; "database"; "delta"; "design"; "detection"; "distance"; "distribution";
    "document"; "domain"; "edit"; "efficiency"; "evaluation"; "experiment"; "feature";
    "fragment"; "framework"; "function"; "graph"; "hierarchy"; "identifier"; "index";
    "information"; "input"; "insertion"; "instance"; "interface"; "key"; "label";
    "latency"; "leaf"; "lemma"; "level"; "locality"; "maintenance"; "management";
    "matching"; "measure"; "memory"; "method"; "metric"; "model"; "module"; "move";
    "node"; "notation"; "object"; "operation"; "optimization"; "order"; "output";
    "overhead"; "paragraph"; "parameter"; "parser"; "pattern"; "performance"; "phase";
    "policy"; "problem"; "procedure"; "process"; "property"; "protocol"; "prototype";
    "query"; "record"; "recovery"; "relation"; "replica"; "report"; "representation";
    "result"; "schema"; "script"; "section"; "semantics"; "sentence"; "sequence";
    "server"; "snapshot"; "solution"; "source"; "storage"; "strategy"; "structure";
    "subtree"; "summary"; "system"; "technique"; "theorem"; "threshold"; "transaction";
    "transformation"; "traversal"; "tree"; "update"; "value"; "variant"; "version";
    "view"; "warehouse"; "workload"; "abstraction"; "aggregate"; "allocation";
    "annotation"; "assertion"; "assignment"; "attribute"; "bandwidth"; "batch";
    "boundary"; "branch"; "calibration"; "capacity"; "cardinality"; "checkpoint";
    "collection"; "compiler"; "component"; "compression"; "concurrency"; "condition";
    "connection"; "container"; "context"; "conversion"; "coordinate"; "correlation";
    "criterion"; "cursor"; "decomposition"; "definition"; "dependency"; "deployment";
    "derivation"; "descriptor"; "dictionary"; "dimension"; "directory"; "dispatch";
    "duration"; "element"; "encoding"; "environment"; "equivalence"; "estimate";
    "exception"; "execution"; "expansion"; "expression"; "extension"; "factor";
    "failure"; "format"; "formula"; "foundation"; "frequency"; "garbage"; "generation";
    "granularity"; "guarantee"; "handler"; "heuristic"; "histogram"; "hypothesis";
    "implementation"; "indirection"; "inference"; "integration"; "invariant";
    "isolation"; "iteration"; "kernel"; "language"; "lattice"; "layout"; "lifetime";
    "linkage"; "listing"; "literal"; "logic"; "machine"; "mapping"; "margin";
    "mechanism"; "migration"; "namespace"; "network"; "observation"; "offset";
    "ordering"; "overview"; "partition"; "payload"; "pipeline"; "placement"; "pointer";
    "precision"; "predicate"; "priority"; "projection"; "provenance"; "quantifier";
    "ranking"; "reduction"; "reference"; "refinement"; "region"; "register";
    "resolution"; "resource"; "routine"; "runtime"; "sampling"; "scalability";
    "scheduling"; "segment"; "selection"; "separation"; "session"; "signature";
    "simulation"; "specification"; "stability"; "statistics"; "stream"; "substrate";
    "synthesis"; "taxonomy"; "template"; "terminology"; "topology"; "tracking";
    "tradeoff"; "transition"; "translation"; "tuple"; "utilization"; "validation";
    "variable"; "vector"; "verification"; "vocabulary"; "window"; "workflow";
  |]

let connectives = [| "the"; "a"; "this"; "each"; "every"; "our"; "their"; "its" |]

let verbs =
  [| "improves"; "reduces"; "maintains"; "computes"; "derives"; "extends";
     "captures"; "supports"; "requires"; "produces"; "evaluates"; "transforms";
     "preserves"; "dominates"; "approximates"; "simplifies" |]

(* Sentences are kept reasonably long (≥ 7 words) and mostly content words:
   real prose sentences rarely share half their words by accident, which is
   exactly why the paper observes Matching Criterion 3 holding in practice.
   Short formulaic sentences would violate MC3 constantly and make the
   synthetic corpus unrepresentative. *)
let sentence g max_words =
  let n = max 7 (7 + P.int g (max 1 (max_words - 6))) in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (String.capitalize_ascii (P.pick g connectives));
  Buffer.add_char buf ' ';
  Buffer.add_string buf (P.pick g vocabulary);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (P.pick g verbs);
  for k = 4 to n do
    Buffer.add_char buf ' ';
    (* The final word is always a content word: a trailing one-letter
       connective would read as an initial to the sentence splitter and
       break the print/parse round-trip. *)
    Buffer.add_string buf
      (if k < n && P.chance g 0.15 then P.pick g connectives else P.pick g vocabulary)
  done;
  Buffer.add_char buf '.';
  Buffer.contents buf

(* A near-duplicate: copy an earlier sentence and tweak at most one word, so
   the word-LCS distance stays well under 1 — an MC3 violation by design. *)
let near_duplicate g earlier =
  let base = P.pick g earlier in
  let words = String.split_on_char ' ' base in
  let n = List.length words in
  if n <= 3 then base
  else
    let victim = 1 + P.int g (n - 2) in
    String.concat " "
      (List.mapi (fun i w -> if i = victim then P.pick g vocabulary else w) words)

let generate g gen profile =
  let seen = ref [] in
  let make_sentence () =
    let s =
      if !seen <> [] && P.chance g profile.duplicate_rate then
        near_duplicate g (Array.of_list !seen)
      else sentence g profile.words_per
    in
    seen := s :: !seen;
    Tree.leaf gen Doc.sentence s
  in
  let make_paragraph () =
    let n = 1 + P.int g profile.sentences_per in
    Tree.node gen Doc.paragraph (List.init n (fun _ -> make_sentence ()))
  in
  let make_block () =
    if P.chance g profile.list_rate then
      let items = 2 + P.int g 3 in
      Tree.node gen Doc.list
        (List.init items (fun _ -> Tree.node gen Doc.item [ make_paragraph () ]))
    else make_paragraph ()
  in
  let make_blocks () =
    let n = 1 + P.int g profile.paragraphs_per in
    List.init n (fun _ -> make_block ())
  in
  let title () =
    String.capitalize_ascii (P.pick g vocabulary) ^ " " ^ P.pick g vocabulary
  in
  let make_subsection () = Tree.node gen Doc.subsection ~value:(title ()) (make_blocks ()) in
  let make_section () =
    let subs =
      if profile.subsections_per = 0 then []
      else List.init (P.int g (profile.subsections_per + 1)) (fun _ -> make_subsection ())
    in
    Tree.node gen Doc.section ~value:(title ()) (make_blocks () @ subs)
  in
  Tree.node gen Doc.document (List.init (max 1 profile.sections) (fun _ -> make_section ()))
