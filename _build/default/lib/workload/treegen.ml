module P = Treediff_util.Prng
module Tree = Treediff_tree.Tree
module Node = Treediff_tree.Node

let random_labeled g gen ~max_depth ~max_width ~labels ~vocab =
  let nlabels = Array.length labels in
  let rec build depth =
    let label = labels.(min depth (nlabels - 1)) in
    let leaf = depth >= max_depth || (depth > 0 && P.chance g 0.2) in
    if leaf then Tree.leaf gen label (Printf.sprintf "v%d" (P.int g vocab))
    else
      let width = 1 + P.int g max_width in
      Tree.node gen label (List.init width (fun _ -> build (depth + 1)))
  in
  build 0

let random_document g gen ~paragraphs ~vocab =
  let para _ =
    let ns = 1 + P.int g 5 in
    Tree.node gen "P"
      (List.init ns (fun _ -> Tree.leaf gen "S" (Printf.sprintf "s%d" (P.int g vocab))))
  in
  Tree.node gen "D" (List.init (max 1 paragraphs) para)

let perturb g gen ?ops t =
  let t = Tree.relabel_ids gen t in
  let ops = match ops with Some n -> n | None -> 1 + P.int g 8 in
  let nodes () = Node.preorder t in
  let internals () = List.filter (fun n -> not (Node.is_leaf n)) (nodes ()) in
  for _ = 1 to ops do
    match P.int g 5 with
    | 0 -> (
      (* shuffle the children of a random internal node *)
      match internals () with
      | [] -> ()
      | l ->
        let n = P.pick g (Array.of_list l) in
        let cs = Array.of_list (Node.children n) in
        Array.iter Node.detach cs;
        P.shuffle g cs;
        Array.iter (Node.append_child n) cs)
    | 1 -> (
      (* move a random non-root subtree under another internal node *)
      let candidates = List.filter (fun (n : Node.t) -> n.parent <> None) (nodes ()) in
      match candidates with
      | [] -> ()
      | l -> (
        let x = P.pick g (Array.of_list l) in
        let dests =
          List.filter
            (fun (d : Node.t) -> d.id <> x.Node.id && not (Node.is_ancestor x d))
            (internals ())
        in
        match dests with
        | [] -> ()
        | ds ->
          let d = P.pick g (Array.of_list ds) in
          Node.detach x;
          Node.insert_child d (P.int g (Node.child_count d + 1)) x))
    | 2 -> (
      match Node.leaves t with
      | [] -> ()
      | ls -> (P.pick g (Array.of_list ls)).Node.value <- Printf.sprintf "upd%d" (P.int g 1000))
    | 3 -> (
      match internals () with
      | [] -> ()
      | is ->
        let p = P.pick g (Array.of_list is) in
        Node.insert_child p
          (P.int g (Node.child_count p + 1))
          (Tree.leaf gen "S" (Printf.sprintf "new%d" (P.int g 1000))))
    | _ -> (
      match List.filter (fun (l : Node.t) -> l.parent <> None) (Node.leaves t) with
      | [] -> ()
      | ls -> Node.detach (P.pick g (Array.of_list ls)))
  done;
  t
