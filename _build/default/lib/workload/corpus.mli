(** The evaluation corpora: three sets of document versions standing in for
    the paper's three sets of conference-paper revisions (§8).

    Each set is a chain [v0 → v1 → …] where each version is derived from its
    predecessor by the revision mutator with a set-specific edit volume.
    Everything is deterministic in the seeds, so experiment output is
    reproducible run to run. *)

type set = {
  name : string;
  profile_name : string;
  versions : Treediff_tree.Node.t list;  (** oldest first *)
  gen : Treediff_tree.Tree.gen;
      (** the id generator all versions share (ids are disjoint) *)
}

val standard : unit -> set list
(** The three sets used by the §8 experiments: small/medium/large documents,
    6 versions each, seeds 101, 202, 303. *)

val make :
  name:string ->
  seed:int ->
  profile:Docgen.profile ->
  versions:int ->
  edits_per_version:int ->
  set

val pairs : set -> (Treediff_tree.Node.t * Treediff_tree.Node.t) list
(** All ordered intra-set pairs (vᵢ, vⱼ) with i < j — the paper compares
    files within each set only. *)

val consecutive_pairs : set -> (Treediff_tree.Node.t * Treediff_tree.Node.t) list
