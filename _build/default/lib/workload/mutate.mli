(** Document-version mutator: derive a "new version" from an old one by a
    calibrated mix of revision actions, simulating how authors edit papers.

    The mutated tree is a fresh-identifier copy (the keyless scenario: node
    identities never carry across versions).  The action tally is returned so
    experiments can relate the {e applied} edit mix to the {e detected} edit
    script. *)

type mix = {
  sentence_update : float;  (** reword part of a sentence (still matchable) *)
  sentence_insert : float;
  sentence_delete : float;
  sentence_move : float;    (** within or across paragraphs *)
  paragraph_insert : float;
  paragraph_delete : float;
  paragraph_move : float;   (** within or across sections *)
  section_shuffle : float;  (** swap two adjacent sections *)
}

val revision_mix : mix
(** Calibrated to paper revisions: mostly sentence updates and inserts,
    occasional paragraph restructuring, rare section moves. *)

val move_heavy_mix : mix
(** Emphasises moves — for exercising the align/move phases. *)

type report = { applied : (string * int) list; actions : int }

val mutate :
  ?mix:mix ->
  Treediff_util.Prng.t ->
  Treediff_tree.Tree.gen ->
  Treediff_tree.Node.t ->
  actions:int ->
  Treediff_tree.Node.t * report
(** [mutate g gen doc ~actions] applies [actions] random revision actions to
    a fresh-id copy of [doc] and returns it with the tally.  The input tree
    is not modified.  Actions that find no applicable target (e.g. deleting
    from an empty document) are re-drawn, up to a bounded number of
    attempts. *)
