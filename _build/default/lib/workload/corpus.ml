module P = Treediff_util.Prng
module Tree = Treediff_tree.Tree

type set = {
  name : string;
  profile_name : string;
  versions : Treediff_tree.Node.t list;
  gen : Tree.gen;
}

let make ~name ~seed ~profile ~versions ~edits_per_version =
  let g = P.create seed in
  let gen = Tree.gen () in
  let v0 = Docgen.generate g gen profile in
  let rec chain acc prev k =
    if k = 0 then List.rev acc
    else begin
      (* Vary the volume a little so pairs spread over a range of distances. *)
      let actions = max 1 (edits_per_version + P.int_in g (-edits_per_version / 3) (edits_per_version / 3)) in
      let next, _report = Mutate.mutate g gen prev ~actions in
      chain (next :: acc) next (k - 1)
    end
  in
  let versions = chain [ v0 ] v0 (versions - 1) in
  { name; profile_name = name; versions; gen }

let standard () =
  [
    make ~name:"set-A (small)" ~seed:101 ~profile:Docgen.small ~versions:6
      ~edits_per_version:8;
    make ~name:"set-B (medium)" ~seed:202 ~profile:Docgen.medium ~versions:6
      ~edits_per_version:18;
    make ~name:"set-C (large)" ~seed:303 ~profile:Docgen.large ~versions:6
      ~edits_per_version:30;
  ]

let pairs set =
  let vs = Array.of_list set.versions in
  let out = ref [] in
  for i = 0 to Array.length vs - 1 do
    for j = i + 1 to Array.length vs - 1 do
      out := (vs.(i), vs.(j)) :: !out
    done
  done;
  List.rev !out

let consecutive_pairs set =
  let rec walk = function
    | a :: (b :: _ as rest) -> (a, b) :: walk rest
    | [ _ ] | [] -> []
  in
  walk set.versions
