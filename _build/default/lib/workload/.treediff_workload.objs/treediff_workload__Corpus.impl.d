lib/workload/corpus.ml: Array Docgen List Mutate Treediff_tree Treediff_util
