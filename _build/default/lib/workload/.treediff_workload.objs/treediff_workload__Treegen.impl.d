lib/workload/treegen.ml: Array List Printf Treediff_tree Treediff_util
