lib/workload/mutate.mli: Treediff_tree Treediff_util
