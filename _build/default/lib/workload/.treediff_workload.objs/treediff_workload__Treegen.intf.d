lib/workload/treegen.mli: Treediff_tree Treediff_util
