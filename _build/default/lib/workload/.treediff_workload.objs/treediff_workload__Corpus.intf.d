lib/workload/corpus.mli: Docgen Treediff_tree
