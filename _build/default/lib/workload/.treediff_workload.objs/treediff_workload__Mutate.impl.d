lib/workload/mutate.ml: Array Docgen Hashtbl List String Treediff_doc Treediff_tree Treediff_util
