lib/workload/docgen.ml: Array Buffer List String Treediff_doc Treediff_tree Treediff_util
