lib/workload/docgen.mli: Treediff_tree Treediff_util
