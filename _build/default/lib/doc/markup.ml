module Delta = Treediff.Delta

(* Marker display names: marker number -> "S1" / "P2" / …, assigned in
   document order, prefixed by the moved unit's kind. *)
type names = { tbl : (int, string) Hashtbl.t; counts : (string, int) Hashtbl.t }

let names () = { tbl = Hashtbl.create 8; counts = Hashtbl.create 8 }

let prefix_for label =
  if String.equal label Doc_tree.sentence then "S"
  else if String.equal label Doc_tree.paragraph then "P"
  else if String.equal label Doc_tree.item then "I"
  else if String.equal label Doc_tree.list then "L"
  else if String.equal label Doc_tree.subsection then "SS"
  else if String.equal label Doc_tree.section then "SEC"
  else "M"

let name_of nm label k =
  match Hashtbl.find_opt nm.tbl k with
  | Some s -> s
  | None ->
    let p = prefix_for label in
    let c = (try Hashtbl.find nm.counts p with Not_found -> 0) + 1 in
    Hashtbl.replace nm.counts p c;
    let s = Printf.sprintf "%s%d" p c in
    Hashtbl.replace nm.tbl k s;
    s

(* Pre-assign names in document order so an old position (marker) seen after
   the new position still shares the same label, and vice versa. *)
let assign_names d =
  let nm = names () in
  let rec walk (d : Delta.t) =
    (match (d.Delta.base, d.Delta.moved) with
    | Delta.Marker, Some k -> ignore (name_of nm d.Delta.label k)
    | _, Some k -> ignore (name_of nm d.Delta.label k)
    | _, None -> ());
    List.iter walk d.Delta.children
  in
  walk d;
  nm

let lookup_name nm k =
  match Hashtbl.find_opt nm.tbl k with Some s -> s | None -> Printf.sprintf "M%d" k

(* ------------------------------------------------------------------ LaTeX *)

let is_label l d = String.equal d.Delta.label l

(* Rendering context: [muted] when inside an already small-fonted (deleted)
   region, [noted] when an ancestor block already carries the same
   insert/delete marginal note (suppresses repeats down the spine). *)
type ctx = { muted : bool; noted : Delta.base option }

let same_note a b =
  match (a, b) with
  | Delta.Inserted, Delta.Inserted | Delta.Deleted, Delta.Deleted -> true
  | _ -> false

let rec latex_sentences buf nm ctx sentences =
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ' ';
      latex_sentence buf nm ctx s)
    sentences

and latex_sentence buf nm ctx (d : Delta.t) =
  let text = d.Delta.value in
  let small s = if ctx.muted then s else Printf.sprintf "{\\small %s}" s in
  match (d.Delta.base, d.Delta.moved) with
  | Delta.Marker, Some k ->
    Buffer.add_string buf
      (Printf.sprintf "%s:[%s]" (name_of nm d.Delta.label k) (small text))
  | Delta.Marker, None -> Buffer.add_string buf (Printf.sprintf "[%s]" (small text))
  | Delta.Deleted, _ -> Buffer.add_string buf (small text)
  | Delta.Inserted, _ ->
    if same_note Delta.Inserted (Option.value ~default:Delta.Identical ctx.noted)
    then Buffer.add_string buf text
    else Buffer.add_string buf (Printf.sprintf "\\textbf{%s}" text)
  | Delta.Updated _, Some k ->
    Buffer.add_string buf
      (Printf.sprintf "[\\textit{%s}]\\footnote{Moved from %s}" text
         (name_of nm d.Delta.label k))
  | Delta.Updated _, None -> Buffer.add_string buf (Printf.sprintf "\\textit{%s}" text)
  | Delta.Identical, Some k ->
    Buffer.add_string buf
      (Printf.sprintf "[%s]\\footnote{Moved from %s}" text (name_of nm d.Delta.label k))
  | Delta.Identical, None -> Buffer.add_string buf text

let block_note nm ctx what (d : Delta.t) =
  let skip base = match ctx.noted with Some n -> same_note n base | None -> false in
  match (d.Delta.base, d.Delta.moved) with
  | Delta.Inserted, _ -> if skip Delta.Inserted then None else Some ("Inserted " ^ what)
  | Delta.Deleted, _ -> if skip Delta.Deleted then None else Some ("Deleted " ^ what)
  | Delta.Marker, Some k -> Some (name_of nm d.Delta.label k)
  | Delta.Marker, None -> Some ("Moved-away " ^ what)
  | (Delta.Identical | Delta.Updated _), Some k ->
    Some (Printf.sprintf "Moved from %s" (name_of nm d.Delta.label k))
  | Delta.Updated _, None -> None (* sentence-level marks are enough *)
  | Delta.Identical, None -> None

let heading_annot (d : Delta.t) =
  match (d.Delta.base, d.Delta.moved) with
  | Delta.Inserted, _ -> "(ins) "
  | Delta.Deleted, _ -> "(del) "
  | Delta.Marker, _ -> "(mov away) "
  | Delta.Updated _, Some _ -> "(upd,mov) "
  | Delta.Updated _, None -> "(upd) "
  | Delta.Identical, Some _ -> "(mov) "
  | Delta.Identical, None -> ""

(* Context pushed into a block's children: muting propagates through deleted
   regions; a carried note suppresses identical notes below. *)
let child_ctx ctx (d : Delta.t) =
  let noted =
    match d.Delta.base with
    | Delta.Inserted -> Some Delta.Inserted
    | Delta.Deleted -> Some Delta.Deleted
    | Delta.Marker -> ctx.noted
    (* An unchanged or moved block breaks the chain: its inserted children
       are new relative to it and must be marked. *)
    | Delta.Identical | Delta.Updated _ -> None
  in
  { ctx with noted }

let rec latex_block buf nm ctx (d : Delta.t) =
  if is_label Doc_tree.paragraph d then begin
    (match block_note nm ctx "para" d with
    | Some note -> Buffer.add_string buf (Printf.sprintf "\\marginpar{%s}" note)
    | None -> ());
    let inner = child_ctx ctx d in
    (match d.Delta.base with
    | (Delta.Deleted | Delta.Marker) when d.Delta.children = [] ->
      (* A content-free ghost (e.g. a moved-away paragraph's old position)
         leaves only its marginal label. *)
      ()
    | Delta.Deleted | Delta.Marker ->
      if ctx.muted then latex_sentences buf nm inner d.Delta.children
      else begin
        Buffer.add_string buf "{\\small ";
        latex_sentences buf nm { inner with muted = true } d.Delta.children;
        Buffer.add_string buf "}"
      end
    | Delta.Identical | Delta.Updated _ | Delta.Inserted ->
      latex_sentences buf nm inner d.Delta.children);
    Buffer.add_string buf "\n\n"
  end
  else if is_label Doc_tree.list d then begin
    (match block_note nm ctx "list" d with
    | Some note -> Buffer.add_string buf (Printf.sprintf "\\marginpar{%s}" note)
    | None -> ());
    let inner = child_ctx ctx d in
    Buffer.add_string buf "\\begin{itemize}\n";
    List.iter
      (fun (it : Delta.t) ->
        Buffer.add_string buf "\\item ";
        (match block_note nm inner "item" it with
        | Some note -> Buffer.add_string buf (Printf.sprintf "\\marginpar{%s}" note)
        | None -> ());
        let item_ctx = child_ctx inner it in
        List.iter (latex_block buf nm item_ctx) it.Delta.children)
      d.Delta.children;
    Buffer.add_string buf "\\end{itemize}\n\n"
  end
  else if is_label Doc_tree.section d || is_label Doc_tree.subsection d then begin
    let cmd = if is_label Doc_tree.section d then "section" else "subsection" in
    Buffer.add_string buf
      (Printf.sprintf "\\%s{%s%s}\n\n" cmd (heading_annot d) d.Delta.value);
    let inner = child_ctx ctx d in
    List.iter (latex_block buf nm inner) d.Delta.children
  end
  else if is_label Doc_tree.sentence d then begin
    (* A sentence directly under a section/document (unusual) renders as its
       own paragraph. *)
    latex_sentence buf nm ctx d;
    Buffer.add_string buf "\n\n"
  end
  else List.iter (latex_block buf nm ctx) d.Delta.children

let to_latex (d : Delta.t) =
  if not (is_label Doc_tree.document d) then
    invalid_arg "Markup.to_latex: root must be a Document delta";
  let nm = assign_names d in
  let buf = Buffer.create 2048 in
  let ctx = { muted = false; noted = None } in
  List.iter (latex_block buf nm ctx) d.Delta.children;
  Buffer.contents buf

(* ------------------------------------------------------------------- text *)

let to_text (d : Delta.t) =
  let nm = assign_names d in
  let buf = Buffer.create 2048 in
  let rec walk depth (d : Delta.t) =
    let indent = String.make (2 * depth) ' ' in
    let header =
      match (d.Delta.base, d.Delta.moved) with
      | Delta.Inserted, _ -> "{+ "
      | Delta.Deleted, _ -> "{- "
      | Delta.Marker, Some k -> Printf.sprintf "{<%s " (name_of nm d.Delta.label k)
      | Delta.Marker, None -> "{< "
      | Delta.Updated _, Some k -> Printf.sprintf "{~>%s " (name_of nm d.Delta.label k)
      | Delta.Updated _, None -> "{~ "
      | Delta.Identical, Some k -> Printf.sprintf "{>%s " (name_of nm d.Delta.label k)
      | Delta.Identical, None -> ""
    in
    let footer = if header = "" then "" else "}" in
    let old_note =
      match d.Delta.base with
      | Delta.Updated old -> Printf.sprintf " (was: %s)" old
      | _ -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s%s%s%s\n" indent header d.Delta.label
         (if d.Delta.value = "" then "" else ": " ^ d.Delta.value)
         old_note footer);
    List.iter (walk (depth + 1)) d.Delta.children
  in
  walk 0 d;
  Buffer.contents buf

let summary d =
  let ins, del, upd, mov = Delta.counts d in
  Printf.sprintf "%d inserted, %d deleted, %d updated, %d moved" ins del upd mov
