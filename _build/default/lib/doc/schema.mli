(** Validation of document trees against the §7 structuring schema.

    The schema restricts which labels may nest under which — the acyclic
    label order [Sentence < Paragraph < Item < List < Subsection < Section <
    Document] — plus positional rules (a section's blocks precede its
    subsections; list children are items).  The parsers only produce valid
    trees; this validator guards hand-built or deserialized ones before they
    enter the pipeline. *)

val validate : Treediff_tree.Node.t -> (unit, string) result
(** [Error msg] describes the first violation found (preorder). *)

val validate_exn : Treediff_tree.Node.t -> unit
(** @raise Invalid_argument with the violation description. *)
