(** HTML rendering of document delta trees — the §9 plan to "incorporate the
    diff program in a web browser" (and the §1 web-monitoring scenario, where
    a changed page is shown with tombstones for moved content).

    Conventions mirror Table 2 with native HTML devices:
    - inserted sentences in [<ins>], deleted in [<del>];
    - updated sentences in [<em>] with the old text in a [title] tooltip;
    - a moved sentence renders as a [<del>] tombstone with an anchor at its
      old position and a linked [<ins class="moved">] at its new position;
    - paragraph/item/section-level changes annotate the block element's
      [class] ([inserted], [deleted], [moved]) and heading text.

    Output is a self-contained fragment (optionally a full page with a small
    embedded stylesheet); no external assets. *)

val to_html : ?full_page:bool -> ?title:string -> Treediff.Delta.t -> string
(** [to_html delta] renders a document delta tree (root label [Document]).
    [full_page] (default false) wraps the fragment in
    [<html><head>…</head><body>…</body></html>] with the default styles.
    @raise Invalid_argument if the root is not a [Document]. *)

val escape : string -> string
(** HTML-escape text content ([&], [<], [>], quotes). *)
