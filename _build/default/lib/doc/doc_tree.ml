module Node = Treediff_tree.Node
module Criteria = Treediff_matching.Criteria

let document = "Document"
let section = "Section"
let subsection = "Subsection"
let paragraph = "Paragraph"
let list = "List"
let item = "Item"
let sentence = "Sentence"

let is_document_label l =
  List.mem l [ document; section; subsection; paragraph; list; item; sentence ]

let criteria_with ?(leaf_f = 0.5) ?(internal_t = 0.6) () =
  Criteria.make ~leaf_f ~internal_t ~compare:Treediff_textdiff.Word_compare.distance ()

let criteria = criteria_with ()

let config_with ?leaf_f ?internal_t () =
  Treediff.Config.with_criteria (criteria_with ?leaf_f ?internal_t ())

let config = config_with ()

let sentence_count t =
  List.length
    (List.filter (fun (n : Node.t) -> String.equal n.label sentence) (Node.preorder t))
