(** The structured-document schema of §7: label constants and helpers for
    document trees.

    The label hierarchy is [Sentence < Paragraph < Item < List < Subsection <
    Section < Document], which satisfies the acyclic-labels condition of §5.1
    after the paper's merge of itemize/enumerate/description into the single
    [List] label (lists may nest, a self-loop the ordering tolerates).

    Values: [Sentence] nodes carry the sentence text; [Section] and
    [Subsection] nodes carry their heading; other labels carry null. *)

val document : string
val section : string
val subsection : string
val paragraph : string
val list : string
val item : string
val sentence : string

val is_document_label : string -> bool
(** Membership in the schema. *)

val criteria : Treediff_matching.Criteria.t
(** The matching criteria LaDiff uses: word-LCS compare
    ({!Treediff_textdiff.Word_compare.distance}), [f = 0.5], [t = 0.6]. *)

val criteria_with : ?leaf_f:float -> ?internal_t:float -> unit -> Treediff_matching.Criteria.t
(** Same compare function, custom thresholds (the Table 1 sweep). *)

val config : Treediff.Config.t
(** Default LaDiff pipeline configuration. *)

val config_with : ?leaf_f:float -> ?internal_t:float -> unit -> Treediff.Config.t

val sentence_count : Treediff_tree.Node.t -> int
(** Number of [Sentence] leaves — the paper's n for document trees. *)
