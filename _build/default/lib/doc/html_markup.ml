module Delta = Treediff.Delta

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let is_label l (d : Delta.t) = String.equal d.Delta.label l

let block_class (d : Delta.t) =
  match (d.Delta.base, d.Delta.moved) with
  | Delta.Inserted, _ -> " class=\"inserted\""
  | Delta.Deleted, _ -> " class=\"deleted\""
  | Delta.Marker, _ -> " class=\"moved-away\""
  | (Delta.Identical | Delta.Updated _), Some _ -> " class=\"moved\""
  | Delta.Updated _, None -> " class=\"updated\""
  | Delta.Identical, None -> ""

let render_sentence buf nm (d : Delta.t) =
  let text = escape d.Delta.value in
  match (d.Delta.base, d.Delta.moved) with
  | Delta.Marker, Some k ->
    let name = Markup.lookup_name nm k in
    Buffer.add_string buf
      (Printf.sprintf "<del id=\"src-%s\" class=\"moved-away\" title=\"moved\">%s</del> " name text)
  | Delta.Marker, None ->
    Buffer.add_string buf (Printf.sprintf "<del class=\"moved-away\">%s</del> " text)
  | Delta.Deleted, _ -> Buffer.add_string buf (Printf.sprintf "<del>%s</del> " text)
  | Delta.Inserted, _ -> Buffer.add_string buf (Printf.sprintf "<ins>%s</ins> " text)
  | Delta.Updated old, Some k ->
    let name = Markup.lookup_name nm k in
    Buffer.add_string buf
      (Printf.sprintf
         "<ins class=\"moved\"><a href=\"#src-%s\"><em title=\"was: %s\">%s</em></a></ins> "
         name (escape old) text)
  | Delta.Updated old, None ->
    Buffer.add_string buf (Printf.sprintf "<em title=\"was: %s\">%s</em> " (escape old) text)
  | Delta.Identical, Some k ->
    let name = Markup.lookup_name nm k in
    Buffer.add_string buf
      (Printf.sprintf "<ins class=\"moved\"><a href=\"#src-%s\">%s</a></ins> " name text)
  | Delta.Identical, None ->
    Buffer.add_string buf text;
    Buffer.add_char buf ' '

let heading_prefix (d : Delta.t) =
  match (d.Delta.base, d.Delta.moved) with
  | Delta.Inserted, _ -> "(ins) "
  | Delta.Deleted, _ -> "(del) "
  | Delta.Marker, _ -> "(moved away) "
  | Delta.Updated _, _ -> "(upd) "
  | Delta.Identical, Some _ -> "(mov) "
  | Delta.Identical, None -> ""

let rec render_block buf nm (d : Delta.t) =
  if is_label Doc_tree.paragraph d then begin
    Buffer.add_string buf (Printf.sprintf "<p%s>" (block_class d));
    List.iter (render_sentence buf nm) d.Delta.children;
    Buffer.add_string buf "</p>\n"
  end
  else if is_label Doc_tree.list d then begin
    Buffer.add_string buf (Printf.sprintf "<ul%s>\n" (block_class d));
    List.iter
      (fun (it : Delta.t) ->
        Buffer.add_string buf (Printf.sprintf "<li%s>" (block_class it));
        List.iter (render_block buf nm) it.Delta.children;
        Buffer.add_string buf "</li>\n")
      d.Delta.children;
    Buffer.add_string buf "</ul>\n"
  end
  else if is_label Doc_tree.section d || is_label Doc_tree.subsection d then begin
    let tag = if is_label Doc_tree.section d then "h2" else "h3" in
    Buffer.add_string buf
      (Printf.sprintf "<%s%s>%s%s</%s>\n" tag (block_class d) (heading_prefix d)
         (escape d.Delta.value) tag);
    (match d.Delta.base with
    | Delta.Deleted | Delta.Marker ->
      Buffer.add_string buf (Printf.sprintf "<div%s>\n" (block_class d));
      List.iter (render_block buf nm) d.Delta.children;
      Buffer.add_string buf "</div>\n"
    | Delta.Identical | Delta.Updated _ | Delta.Inserted ->
      List.iter (render_block buf nm) d.Delta.children)
  end
  else if is_label Doc_tree.sentence d then begin
    Buffer.add_string buf "<p>";
    render_sentence buf nm d;
    Buffer.add_string buf "</p>\n"
  end
  else List.iter (render_block buf nm) d.Delta.children

let stylesheet =
  {|<style>
ins { background: #e6ffe6; text-decoration: none; }
del { background: #ffe6e6; }
em[title] { background: #fff6d8; font-style: italic; }
.moved { border-bottom: 1px dashed #888; }
.moved-away { opacity: 0.6; font-size: 90%; }
.deleted { opacity: 0.75; }
h2.inserted, h3.inserted { color: #0a7a0a; }
h2.deleted, h3.deleted { color: #a01010; }
</style>|}

let to_html ?(full_page = false) ?(title = "document delta") (d : Delta.t) =
  if not (is_label Doc_tree.document d) then
    invalid_arg "Html_markup.to_html: root must be a Document delta";
  let nm = Markup.assign_names d in
  let buf = Buffer.create 4096 in
  if full_page then
    Buffer.add_string buf
      (Printf.sprintf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>\n%s\n</head><body>\n"
         (escape title) stylesheet);
  List.iter (render_block buf nm) d.Delta.children;
  if full_page then Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
