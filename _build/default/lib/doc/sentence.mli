(** Sentence segmentation for paragraph text.

    A heuristic splitter: sentences end at [.], [!] or [?] followed by
    whitespace, unless the period belongs to a known abbreviation (e.g.,
    i.e., etc.) or a single capital initial.  Whitespace inside a sentence is
    normalised to single spaces.  Imperfect segmentation only moves sentence
    boundaries — the diff pipeline downstream stays correct either way. *)

val split : string -> string list
(** [split text] is the list of sentences, each trimmed and
    whitespace-normalised; empty input yields []. *)

val normalize : string -> string
(** Collapse runs of whitespace to single spaces and trim. *)
