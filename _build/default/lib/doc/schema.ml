module Node = Treediff_tree.Node

let allowed_children label =
  if String.equal label Doc_tree.document then
    [ Doc_tree.paragraph; Doc_tree.list; Doc_tree.section ]
  else if String.equal label Doc_tree.section then
    [ Doc_tree.paragraph; Doc_tree.list; Doc_tree.subsection ]
  else if String.equal label Doc_tree.subsection then
    [ Doc_tree.paragraph; Doc_tree.list ]
  else if String.equal label Doc_tree.list then [ Doc_tree.item ]
  else if String.equal label Doc_tree.item then [ Doc_tree.paragraph; Doc_tree.list ]
  else if String.equal label Doc_tree.paragraph then [ Doc_tree.sentence ]
  else [] (* sentences are leaves *)

let validate root =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let rec walk (n : Node.t) =
    if not (Doc_tree.is_document_label n.Node.label) then
      fail "label %S is not in the document schema" n.Node.label;
    if String.equal n.Node.label Doc_tree.sentence && not (Node.is_leaf n) then
      fail "sentence node %d has children" n.Node.id;
    let allowed = allowed_children n.Node.label in
    let seen_subsection = ref false in
    List.iter
      (fun (c : Node.t) ->
        if not (List.mem c.Node.label allowed) then
          fail "%s node %d cannot contain a %s" n.Node.label n.Node.id c.Node.label;
        (* blocks before subsections inside a section *)
        if String.equal n.Node.label Doc_tree.section then begin
          if String.equal c.Node.label Doc_tree.subsection then seen_subsection := true
          else if !seen_subsection then
            fail "section %d has a block after a subsection" n.Node.id
        end;
        walk c)
      (Node.children n);
    ()
  in
  if not (String.equal root.Node.label Doc_tree.document) then
    Error (Printf.sprintf "root label must be %S, got %S" Doc_tree.document root.Node.label)
  else
    match walk root with () -> Ok () | exception Bad m -> Error m

let validate_exn root =
  match validate root with Ok () -> () | Error m -> invalid_arg ("Schema: " ^ m)
