lib/doc/latex_parser.ml: Buffer Doc_tree List Printf Sentence String Treediff_tree
