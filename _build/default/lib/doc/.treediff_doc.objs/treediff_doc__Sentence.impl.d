lib/doc/sentence.ml: Buffer List String
