lib/doc/xml_parser.ml: Buffer Char List Option Printf String Treediff_tree
