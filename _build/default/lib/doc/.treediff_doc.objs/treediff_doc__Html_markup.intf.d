lib/doc/html_markup.mli: Treediff
