lib/doc/markup.mli: Treediff
