lib/doc/markup.ml: Buffer Doc_tree Hashtbl List Option Printf String Treediff
