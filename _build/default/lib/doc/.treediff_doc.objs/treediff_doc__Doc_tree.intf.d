lib/doc/doc_tree.mli: Treediff Treediff_matching Treediff_tree
