lib/doc/schema.mli: Treediff_tree
