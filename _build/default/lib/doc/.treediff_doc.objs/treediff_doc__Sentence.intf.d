lib/doc/sentence.mli:
