lib/doc/ladiff.mli: Treediff Treediff_tree
