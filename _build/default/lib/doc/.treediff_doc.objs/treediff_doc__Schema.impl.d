lib/doc/schema.ml: Doc_tree List Printf String Treediff_tree
