lib/doc/html_markup.ml: Buffer Doc_tree List Markup Printf String Treediff
