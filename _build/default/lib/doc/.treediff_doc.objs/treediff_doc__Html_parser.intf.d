lib/doc/html_parser.mli: Treediff_tree
