lib/doc/doc_tree.ml: List String Treediff Treediff_matching Treediff_textdiff Treediff_tree
