lib/doc/latex_parser.mli: Treediff_tree
