lib/doc/ladiff.ml: Doc_tree Html_parser Latex_parser Markup Treediff Treediff_tree
