lib/doc/xml_parser.mli: Treediff_tree
