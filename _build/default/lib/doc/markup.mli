(** Rendering delta trees as marked-up documents — Table 2's conventions.

    | unit       | insert          | delete        | update       | move |
    |------------|-----------------|---------------|--------------|------|
    | Sentence   | bold            | small font    | italic       | small font + label at old position, footnote at new |
    | Paragraph  | marginal note   | marginal note | marginal note| marginal note + label |
    | Item       | marginal note   | marginal note | marginal note| marginal note + label |
    | Section(s) | (ins) in heading| (del)         | (upd)        | (mov) |

    Moved-and-updated units are marked for both at once (App. A).  Marker
    labels are [S1, S2, …] for sentences, [P1, …] for paragraphs, [I1, …]
    for items, assigned in document order. *)

val to_latex : Treediff.Delta.t -> string
(** Marked-up LaTeX for a document delta tree (root label [Document]). *)

val to_text : Treediff.Delta.t -> string
(** Plain-text rendering with inline change markers — works for any delta
    tree, not only documents: inserted [{+ …+}], deleted [{- …-}], updated
    [{~ … (was: …)~}], moves [{>Sk …}] with origin [{<Sk}]. *)

val summary : Treediff.Delta.t -> string
(** One-line tally, e.g. ["3 inserted, 1 deleted, 2 updated, 1 moved"]. *)

(** {2 Marker naming}

    Shared by the LaTeX and HTML renderers so both give the same move the
    same display label. *)

type names

val assign_names : Treediff.Delta.t -> names
(** Walk the delta in document order assigning [S1, P1, …] labels to every
    move marker. *)

val lookup_name : names -> int -> string
(** The display label of a marker number; a generic ["M<k>"] if the marker
    was never assigned (cannot happen for {!assign_names} output). *)
