type format = Latex | Html

type output = {
  result : Treediff.Diff.t;
  marked_latex : string;
  marked_text : string;
  old_tree : Treediff_tree.Node.t;
  new_tree : Treediff_tree.Node.t;
}

let parse ?(format = Latex) gen src =
  match format with
  | Latex -> Latex_parser.parse gen src
  | Html -> Html_parser.parse gen src

let run ?(format = Latex) ?(config = Doc_tree.config) ~old_src ~new_src () =
  let gen = Treediff_tree.Tree.gen () in
  let old_tree = parse ~format gen old_src in
  let new_tree = parse ~format gen new_src in
  let result = Treediff.Diff.diff ~config old_tree new_tree in
  {
    result;
    marked_latex = Markup.to_latex result.Treediff.Diff.delta;
    marked_text = Markup.to_text result.Treediff.Diff.delta;
    old_tree;
    new_tree;
  }
