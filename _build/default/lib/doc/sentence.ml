let normalize s =
  let buf = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length buf > 0 then pending_space := true
      | c ->
        if !pending_space then begin
          Buffer.add_char buf ' ';
          pending_space := false
        end;
        Buffer.add_char buf c)
    s;
  Buffer.contents buf

let abbreviations =
  [ "e.g"; "i.e"; "etc"; "cf"; "vs"; "fig"; "sec"; "eq"; "no"; "al"; "dr"; "mr"; "mrs"; "ms"; "prof"; "st" ]

(* The word immediately before position [i] (which holds '.', '!' or '?'),
   lowercased, with leading punctuation (quotes, parentheses) stripped so
   "(e.g." is recognised as the abbreviation "e.g". *)
let word_before s i =
  let j = ref (i - 1) in
  while !j >= 0 && s.[!j] <> ' ' && s.[!j] <> '\t' && s.[!j] <> '\n' do
    decr j
  done;
  let w = String.sub s (!j + 1) (i - !j - 1) in
  let w = String.lowercase_ascii w in
  let k = ref 0 in
  while
    !k < String.length w
    && match w.[!k] with 'a' .. 'z' | '0' .. '9' -> false | _ -> true
  do
    incr k
  done;
  String.sub w !k (String.length w - !k)

let is_abbreviation w = List.mem w abbreviations

let is_single_initial w =
  String.length w = 1
  && (match w.[0] with 'a' .. 'z' -> true | _ -> false)

let split text =
  let s = normalize text in
  let n = String.length s in
  if n = 0 then []
  else begin
    let sentences = ref [] in
    let start = ref 0 in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | ('.' | '!' | '?') as punct ->
        (* absorb a run of closing quotes/brackets after the terminator *)
        let j = ref (!i + 1) in
        while
          !j < n && (s.[!j] = '"' || s.[!j] = '\'' || s.[!j] = ')' || s.[!j] = ']')
        do
          incr j
        done;
        let at_boundary = !j >= n || s.[!j] = ' ' in
        let w = word_before s !i in
        let abbrev = punct = '.' && (is_abbreviation w || is_single_initial w) in
        if at_boundary && not abbrev then begin
          let sentence = String.sub s !start (!j - !start) in
          if String.trim sentence <> "" then sentences := sentence :: !sentences;
          (* skip the following space *)
          start := (if !j < n then !j + 1 else !j);
          i := !j
        end
      | _ -> ());
      incr i
    done;
    if !start < n then begin
      let tail = String.trim (String.sub s !start (n - !start)) in
      if tail <> "" then sentences := tail :: !sentences
    end;
    List.rev !sentences
  end
