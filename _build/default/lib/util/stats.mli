(** Instrumentation counters for the §8 performance experiments.

    The paper reports FastMatch running time "as measured by the number of
    comparisons": [r1] leaf-node [compare] invocations and [r2] partner checks
    (integer comparisons).  A [Stats.t] is threaded through the matching
    algorithms to collect exactly those counters. *)

type t = {
  mutable leaf_compares : int;  (** invocations of the leaf [compare] function (r1) *)
  mutable partner_checks : int; (** partner/containment integer checks (r2) *)
  mutable node_visits : int;    (** nodes examined (auxiliary) *)
}

val create : unit -> t

val reset : t -> unit

val total : t -> int
(** [total s] is [leaf_compares + partner_checks], the paper's combined
    comparison count. *)

val add : t -> t -> unit
(** [add acc s] accumulates [s] into [acc]. *)

val pp : Format.formatter -> t -> unit
