(** Deterministic pseudo-random number generator (splitmix64).

    All workload generators take an explicit generator so that every corpus,
    mutation sequence and benchmark input is reproducible from a seed,
    independent of the OCaml stdlib [Random] implementation. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float
(** [float g] is uniform in [\[0, 1)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** [pick g a] is a uniformly chosen element.  @raise Invalid_argument on an
    empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split g] advances [g] and returns an independent generator, for handing
    distinct deterministic streams to sub-tasks. *)
