type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (length %d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

(* Grow to at least [n] capacity, doubling to amortise; [witness] fills the
   fresh slots so the array never holds an unsafe dummy. *)
let ensure v n witness =
  let cap = Array.length v.data in
  if cap < n then begin
    let cap' = max n (max 8 (2 * cap)) in
    let data' = Array.make cap' witness in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

let push v x =
  ensure v (v.len + 1) x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let insert v i x =
  if i < 0 || i > v.len then
    invalid_arg (Printf.sprintf "Vec.insert: index %d out of bounds (length %d)" i v.len);
  ensure v (v.len + 1) x;
  Array.blit v.data i v.data (i + 1) (v.len - i);
  v.data.(i) <- x;
  v.len <- v.len + 1

let remove v i =
  check v i;
  let x = v.data.(i) in
  Array.blit v.data (i + 1) v.data i (v.len - i - 1);
  v.len <- v.len - 1;
  x

let index p v =
  let rec loop i = if i >= v.len then None else if p v.data.(i) then Some i else loop (i + 1) in
  loop 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let to_list v = List.init v.len (fun i -> v.data.(i))

let to_array v = Array.sub v.data 0 v.len

let copy v = { data = Array.copy v.data; len = v.len }

let clear v =
  v.data <- [||];
  v.len <- 0
