lib/util/prng.mli:
