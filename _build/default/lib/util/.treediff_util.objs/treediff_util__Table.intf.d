lib/util/table.mli:
