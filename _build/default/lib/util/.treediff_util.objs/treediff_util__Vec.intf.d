lib/util/vec.mli:
