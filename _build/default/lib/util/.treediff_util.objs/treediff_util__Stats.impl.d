lib/util/stats.ml: Format
