(** Growable arrays with positional insertion and removal.

    Used for the mutable child lists of tree nodes: the edit-script generator
    inserts and removes children at arbitrary positions while walking the
    working tree.  Indices are 0-based throughout. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is a fresh empty vector. *)

val of_list : 'a list -> 'a t

val of_array : 'a array -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]th element.  @raise Invalid_argument if out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at the end. *)

val insert : 'a t -> int -> 'a -> unit
(** [insert v i x] inserts [x] so that it becomes the element at index [i],
    shifting later elements right.  [i] may equal [length v] (append).
    @raise Invalid_argument if [i < 0 || i > length v]. *)

val remove : 'a t -> int -> 'a
(** [remove v i] removes and returns the element at index [i], shifting later
    elements left.  @raise Invalid_argument if out of bounds. *)

val index : ('a -> bool) -> 'a t -> int option
(** [index p v] is the index of the first element satisfying [p], if any. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val copy : 'a t -> 'a t

val clear : 'a t -> unit
