type t = {
  mutable leaf_compares : int;
  mutable partner_checks : int;
  mutable node_visits : int;
}

let create () = { leaf_compares = 0; partner_checks = 0; node_visits = 0 }

let reset s =
  s.leaf_compares <- 0;
  s.partner_checks <- 0;
  s.node_visits <- 0

let total s = s.leaf_compares + s.partner_checks

let add acc s =
  acc.leaf_compares <- acc.leaf_compares + s.leaf_compares;
  acc.partner_checks <- acc.partner_checks + s.partner_checks;
  acc.node_visits <- acc.node_visits + s.node_visits

let pp ppf s =
  Format.fprintf ppf "compares=%d partner-checks=%d visits=%d" s.leaf_compares
    s.partner_checks s.node_visits
