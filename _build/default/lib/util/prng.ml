(* Splitmix64: fast, well-distributed, and trivially reproducible across
   platforms.  Reference: Steele, Lea & Flood, OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let next g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let x = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  x mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g =
  let x = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (next g) 1L = 1L

let chance g p = float g < p

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let pick_list g l = pick g (Array.of_list l)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split g = { state = next g }
