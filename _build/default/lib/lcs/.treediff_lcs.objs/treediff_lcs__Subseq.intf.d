lib/lcs/subseq.mli:
