lib/lcs/subseq.ml: Array List Myers
