lib/lcs/myers.mli:
