lib/lcs/dp.mli:
