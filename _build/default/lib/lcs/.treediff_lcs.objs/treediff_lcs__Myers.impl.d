lib/lcs/myers.ml: Array List
