lib/lcs/dp.ml: Array
