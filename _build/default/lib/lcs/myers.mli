(** Myers' O(ND) longest-common-subsequence algorithm [Mye86].

    This is the LCS procedure the paper relies on in three places: aligning
    children in [AlignChildren] (§4.2), the per-label chain matching of
    [FastMatch] (§5.3), and the word-level sentence comparison of LaDiff (§7).
    Following §4.2 it is parameterised by an arbitrary equality function — the
    reason the paper cannot reuse the stock UNIX diff, which needs ordering
    comparisons.

    Running time is O((N+M)·D) where D is the size of the shortest edit
    script; space is O(D²) for path recovery. *)

val lcs : equal:('a -> 'b -> bool) -> 'a array -> 'b array -> (int * int) list
(** [lcs ~equal a b] is the list of index pairs [(i, j)] (strictly increasing
    in both components) such that [equal a.(i) b.(j)] and the list is a
    longest common subsequence of [a] and [b]. *)

val lcs_pairs : equal:('a -> 'b -> bool) -> 'a array -> 'b array -> ('a * 'b) list
(** Like {!lcs} but returning the elements themselves. *)

val lcs_length : equal:('a -> 'b -> bool) -> 'a array -> 'b array -> int

val edit_distance : equal:('a -> 'b -> bool) -> 'a array -> 'b array -> int
(** [edit_distance ~equal a b] is D = N + M − 2·|LCS|, the number of element
    insertions plus deletions in a shortest edit script. *)
