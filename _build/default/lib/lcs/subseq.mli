(** Flat edit scripts derived from an LCS — the GNU-diff view of a sequence
    pair.  Used by the flat line differ ({!Treediff_textdiff.Line_diff}), the
    baseline of §2 that reports moves as deletions plus insertions. *)

type item =
  | Keep of int * int  (** element [a.(i)] matches [b.(j)] *)
  | Del of int         (** element [a.(i)] is deleted *)
  | Ins of int         (** element [b.(j)] is inserted *)

val diff : equal:('a -> 'b -> bool) -> 'a array -> 'b array -> item list
(** [diff ~equal a b] is the full alignment of [a] and [b]: every index of
    each array appears exactly once, in order, as a [Keep], [Del] or [Ins]. *)

val counts : item list -> int * int * int
(** [(kept, deleted, inserted)] tallies. *)
