let table equal a b =
  let n = Array.length a and m = Array.length b in
  let t = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = 1 to n do
    for j = 1 to m do
      t.(i).(j) <-
        (if equal a.(i - 1) b.(j - 1) then t.(i - 1).(j - 1) + 1
         else max t.(i - 1).(j) t.(i).(j - 1))
    done
  done;
  t

let lcs ~equal a b =
  let n = Array.length a and m = Array.length b in
  let t = table equal a b in
  let rec walk i j acc =
    if i = 0 || j = 0 then acc
    else if equal a.(i - 1) b.(j - 1) && t.(i).(j) = t.(i - 1).(j - 1) + 1 then
      walk (i - 1) (j - 1) ((i - 1, j - 1) :: acc)
    else if t.(i - 1).(j) >= t.(i).(j - 1) then walk (i - 1) j acc
    else walk i (j - 1) acc
  in
  walk n m []

let lcs_length ~equal a b =
  let n = Array.length a and m = Array.length b in
  (table equal a b).(n).(m)
