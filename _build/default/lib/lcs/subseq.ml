type item = Keep of int * int | Del of int | Ins of int

let diff ~equal a b =
  let pairs = Myers.lcs ~equal a b in
  let n = Array.length a and m = Array.length b in
  let out = ref [] in
  let emit x = out := x :: !out in
  let rec fill i j = function
    | [] ->
      for i' = i to n - 1 do
        emit (Del i')
      done;
      for j' = j to m - 1 do
        emit (Ins j')
      done
    | (pi, pj) :: rest ->
      for i' = i to pi - 1 do
        emit (Del i')
      done;
      for j' = j to pj - 1 do
        emit (Ins j')
      done;
      emit (Keep (pi, pj));
      fill (pi + 1) (pj + 1) rest
  in
  fill 0 0 pairs;
  List.rev !out

let counts items =
  List.fold_left
    (fun (k, d, i) -> function
      | Keep _ -> (k + 1, d, i)
      | Del _ -> (k, d + 1, i)
      | Ins _ -> (k, d, i + 1))
    (0, 0, 0) items
