(** Textbook O(N·M) dynamic-programming LCS.

    Kept as the independent oracle for property-testing {!Myers}: both
    implementations must report the same LCS length on every input (the LCS
    itself need not be identical — ties may break differently). *)

val lcs : equal:('a -> 'b -> bool) -> 'a array -> 'b array -> (int * int) list
(** [lcs ~equal a b] is an index-pair LCS of [a] and [b]. *)

val lcs_length : equal:('a -> 'b -> bool) -> 'a array -> 'b array -> int
