(** Ablations over the design knobs DESIGN.md calls out.

    1. {b Match threshold t} (§5.1, Criterion 2): lower t matches more
       aggressively (cheaper scripts, more risk on MC3-violating data);
       higher t rebuilds more subtrees.  Sweep t ∈ {0.5 … 1.0} on a corpus
       pair and report script composition and cost.
    2. {b A(k) scan window} (§9's parameterized algorithm): k bounds the
       FastMatch straggler scan.  k = 0 is pure LCS matching; k = ∞ is the
       paper's FastMatch.  Sweep k and report comparisons vs script cost —
       the optimality/efficiency tradeoff curve. *)

type threshold_row = {
  t : float;
  cost : float;
  ops : int;
  moves : int;
  ins_del : int;
  matched_pairs : int;
}

type window_row = {
  k : string;           (** "0", "1", …, "inf" *)
  comparisons : int;
  cost : float;
  ops : int;
}

type data = { thresholds : threshold_row list; windows : window_row list }

val compute : unit -> data

val print : data -> unit

val run : unit -> data
