module Node = Treediff_tree.Node

type row = {
  n : int;
  l : int;
  d : int;
  e : int;
  leaf_compares : int;
  partner_checks : int;
  cost : float;
  inserts : int;
  deletes : int;
  updates : int;
  moves : int;
}

let comparisons r = r.leaf_compares + r.partner_checks

let analytic_bound r = (r.n * r.e) + (r.e * r.e) + (2 * r.l * r.n * r.e)

let leaves_total t1 t2 = List.length (Node.leaves t1) + List.length (Node.leaves t2)

let internal_labels t1 t2 =
  List.length (Treediff_matching.Label_order.internal_labels t1 t2)

let pair ?(config = Treediff_doc.Doc_tree.config) t1 t2 =
  let result = Treediff.Diff.diff ~config t1 t2 in
  let m = result.Treediff.Diff.measure in
  let stats = result.Treediff.Diff.stats in
  let row =
    {
      n = leaves_total t1 t2;
      l = internal_labels t1 t2;
      d = Treediff_edit.Script.unweighted m;
      e = m.Treediff_edit.Script.weighted;
      leaf_compares = stats.Treediff_util.Stats.leaf_compares;
      partner_checks = stats.Treediff_util.Stats.partner_checks;
      cost = m.Treediff_edit.Script.cost;
      inserts = m.Treediff_edit.Script.inserts;
      deletes = m.Treediff_edit.Script.deletes;
      updates = m.Treediff_edit.Script.updates;
      moves = m.Treediff_edit.Script.moves;
    }
  in
  (row, result)
