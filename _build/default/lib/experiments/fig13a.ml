module Table = Treediff_util.Table
module Corpus = Treediff_workload.Corpus

type point = { set_name : string; n : int; d : int; e : int }

type data = {
  points : point list;
  ratio_by_set : (string * float) list;
  ratio_overall : float;
}

let compute () =
  let sets = Corpus.standard () in
  let points =
    List.concat_map
      (fun set ->
        List.map
          (fun (a, b) ->
            let row, _ = Measure.pair a b in
            { set_name = set.Corpus.name; n = row.Measure.n; d = row.Measure.d;
              e = row.Measure.e })
          (Corpus.pairs set))
      sets
  in
  let mean_ratio pts =
    let ratios =
      List.filter_map
        (fun p -> if p.d = 0 then None else Some (float_of_int p.e /. float_of_int p.d))
        pts
    in
    if ratios = [] then 0.0
    else List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
  in
  let ratio_by_set =
    List.map
      (fun set ->
        ( set.Corpus.name,
          mean_ratio (List.filter (fun p -> p.set_name = set.Corpus.name) points) ))
      sets
  in
  { points; ratio_by_set; ratio_overall = mean_ratio points }

let print data =
  print_endline "== Figure 13(a): weighted (e) vs unweighted (d) edit distance ==";
  print_endline "   (paper: near-linear relation, low variance across sets, mean e/d = 3.4)";
  let t = Table.create ~headers:[ "set"; "n (leaves)"; "d"; "e"; "e/d" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.set_name; Table.cell_int p.n; Table.cell_int p.d; Table.cell_int p.e;
          (if p.d = 0 then "-" else Table.cell_float (float_of_int p.e /. float_of_int p.d)) ])
    data.points;
  Table.print t;
  print_newline ();
  let s = Table.create ~headers:[ "set"; "mean e/d" ] in
  List.iter
    (fun (name, r) -> Table.add_row s [ name; Table.cell_float r ])
    data.ratio_by_set;
  Table.add_sep s;
  Table.add_row s [ "overall"; Table.cell_float data.ratio_overall ];
  Table.print s;
  print_newline ()

let run () =
  let data = compute () in
  print data;
  data
