(** Figure 13(b): FastMatch running time — measured as its comparison count —
    versus the weighted edit distance e, against the analytic bound
    (ne + e²)c + 2lne.

    The paper observes an approximately linear relation with high variance,
    with the measured count on average ≈ 20× below the analytic bound
    ("the analytical bound … is a loose one"). *)

type point = {
  set_name : string;
  n : int;
  e : int;
  measured : int;       (** leaf compares + partner checks *)
  bound : int;          (** (ne + e²) + 2lne *)
}

type data = {
  points : point list;
  mean_bound_ratio : float;  (** mean bound/measured — the paper's ≈ 20 *)
}

val compute : unit -> data

val print : data -> unit

val run : unit -> data
