module Table = Treediff_util.Table
module P = Treediff_util.Prng
module Tree = Treediff_tree.Tree
module Node = Treediff_tree.Node
module Docgen = Treediff_workload.Docgen
module Mutate = Treediff_workload.Mutate
module Latex = Treediff_doc.Latex_parser
module Line_diff = Treediff_textdiff.Line_diff
module ZS = Treediff_zs.Zhang_shasha

type scenario = {
  name : string;
  ours_ops : int;
  ours_moves : int;
  ours_updates : int;
  ours_ins_del : int;
  flat_deleted_lines : int;
  flat_inserted_lines : int;
  zs_distance : float;
  hybrid_cost : float;
}

type data = { scenarios : scenario list }

let base_doc seed =
  let g = P.create seed in
  let gen = Tree.gen () in
  let profile =
    { Docgen.small with Docgen.sections = 4; paragraphs_per = 4; sentences_per = 5;
      list_rate = 0.0 }
  in
  (g, gen, Docgen.generate g gen profile)

(* Move the smallest paragraph into the largest other section, so neither
   section's leaf overlap drops below the criterion-2 threshold and the
   ground truth stays a single MOV (a large paragraph moving can legitimately
   unmatch its section — see the mixed scenarios for that regime). *)
let move_paragraph g t2 =
  ignore g;
  let paras =
    List.filter
      (fun (n : Node.t) ->
        String.equal n.label Treediff_doc.Doc_tree.paragraph
        && match n.parent with Some q -> Node.child_count q >= 2 | None -> false)
      (Node.preorder t2)
  in
  let by_leaves l = List.sort (fun a b -> compare (Node.leaf_count a) (Node.leaf_count b)) l in
  let p = match by_leaves paras with p :: _ -> p | [] -> invalid_arg "no paragraph" in
  let sections =
    List.filter
      (fun (n : Node.t) ->
        String.equal n.label Treediff_doc.Doc_tree.section
        && (match p.Node.parent with Some q -> q.Node.id <> n.id | None -> true))
      (Node.preorder t2)
  in
  let dest =
    match List.rev (by_leaves sections) with
    | d :: _ -> d
    | [] -> invalid_arg "no destination section"
  in
  Node.detach p;
  Node.insert_child dest 0 p;
  t2

let move_sentence g gen t =
  let t2 = Tree.relabel_ids gen t in
  let sentences =
    List.filter
      (fun (n : Node.t) ->
        String.equal n.label Treediff_doc.Doc_tree.sentence
        && match n.parent with Some q -> Node.child_count q >= 2 | None -> false)
      (Node.preorder t2)
  in
  let s = P.pick g (Array.of_list sentences) in
  let paras =
    List.filter
      (fun (n : Node.t) ->
        String.equal n.label Treediff_doc.Doc_tree.paragraph
        && (match s.Node.parent with Some q -> q.Node.id <> n.id | None -> true))
      (Node.preorder t2)
  in
  let dest = P.pick g (Array.of_list paras) in
  Node.detach s;
  Node.insert_child dest (Node.child_count dest) s;
  t2

let update_sentences g gen t k =
  let t2 = Tree.relabel_ids gen t in
  let sentences =
    Array.of_list
      (List.filter
         (fun (n : Node.t) -> String.equal n.label Treediff_doc.Doc_tree.sentence)
         (Node.preorder t2))
  in
  P.shuffle g sentences;
  Array.iteri
    (fun i (s : Node.t) ->
      if i < k then
        s.Node.value <- s.Node.value ^ " " ^ P.pick g Docgen.vocabulary)
    sentences;
  t2

let evaluate name t1 t2 =
  let row, _result = Measure.pair t1 t2 in
  let flat = Line_diff.diff (Latex.print t1) (Latex.print t2) in
  let dl, il = Line_diff.stats flat in
  let zs = ZS.mapping t1 t2 in
  let hybrid_matching = ZS.to_matching zs in
  let hybrid =
    Treediff.Diff.diff_with_matching ~config:Treediff_doc.Doc_tree.config
      ~matching:hybrid_matching t1 t2
  in
  {
    name;
    ours_ops = row.Measure.d;
    ours_moves = row.Measure.moves;
    ours_updates = row.Measure.updates;
    ours_ins_del = row.Measure.inserts + row.Measure.deletes;
    flat_deleted_lines = dl;
    flat_inserted_lines = il;
    zs_distance = zs.ZS.dist;
    hybrid_cost = hybrid.Treediff.Diff.measure.Treediff_edit.Script.cost;
  }

let compute () =
  let scenarios =
    [
      (let g, gen, t = base_doc 7001 in
       let t2 = move_paragraph g (Tree.relabel_ids gen t) in
       evaluate "move 1 paragraph" t t2);
      (let g, gen, t = base_doc 7002 in
       let t2 = move_sentence g gen t in
       evaluate "move 1 sentence" t t2);
      (let g, gen, t = base_doc 7003 in
       let t2 = update_sentences g gen t 3 in
       evaluate "update 3 sentences" t t2);
      (let g, gen, t = base_doc 7004 in
       let t2, _ = Mutate.mutate ~mix:Mutate.revision_mix g gen t ~actions:10 in
       evaluate "mixed revision (10 actions)" t t2);
      (let g, gen, t = base_doc 7005 in
       let t2, _ = Mutate.mutate ~mix:Mutate.move_heavy_mix g gen t ~actions:10 in
       evaluate "move-heavy revision (10 actions)" t t2);
    ]
  in
  { scenarios }

let print data =
  print_endline "== Delta quality: ours vs flat diff vs Zhang-Shasha (SS2 claims) ==";
  print_endline
    "   (moves: ours = 1 MOV; flat diff = del+ins line blocks; ZS89 = subtree del+ins)";
  let t =
    Table.create
      ~headers:
        [ "scenario"; "ours ops"; "mov"; "upd"; "ins+del"; "flat -lines"; "flat +lines";
          "ZS dist"; "ZS+moves cost" ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.name; Table.cell_int s.ours_ops; Table.cell_int s.ours_moves;
          Table.cell_int s.ours_updates; Table.cell_int s.ours_ins_del;
          Table.cell_int s.flat_deleted_lines; Table.cell_int s.flat_inserted_lines;
          Table.cell_float ~decimals:1 s.zs_distance;
          Table.cell_float ~decimals:1 s.hybrid_cost;
        ])
    data.scenarios;
  Table.print t;
  print_newline ()

let run () =
  let data = compute () in
  print data;
  data
