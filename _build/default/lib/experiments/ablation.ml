module Table = Treediff_util.Table
module P = Treediff_util.Prng
module Tree = Treediff_tree.Tree
module Docgen = Treediff_workload.Docgen
module Mutate = Treediff_workload.Mutate
module Doc = Treediff_doc.Doc_tree

type threshold_row = {
  t : float;
  cost : float;
  ops : int;
  moves : int;
  ins_del : int;
  matched_pairs : int;
}

type window_row = { k : string; comparisons : int; cost : float; ops : int }

type data = { thresholds : threshold_row list; windows : window_row list }

(* One fixed document pair for the whole sweep: a medium document with a
   move-heavy revision, the regime where both knobs matter. *)
let workload () =
  let g = P.create 515 in
  let gen = Tree.gen () in
  let t1 = Docgen.generate g gen Docgen.medium in
  let t2, _ = Mutate.mutate ~mix:Mutate.move_heavy_mix g gen t1 ~actions:20 in
  (t1, t2)

let compute () =
  let t1, t2 = workload () in
  let thresholds =
    List.map
      (fun t ->
        let config = Doc.config_with ~internal_t:t () in
        let row, result = Measure.pair ~config t1 t2 in
        {
          t;
          cost = row.Measure.cost;
          ops = row.Measure.d;
          moves = row.Measure.moves;
          ins_del = row.Measure.inserts + row.Measure.deletes;
          matched_pairs =
            Treediff_matching.Matching.cardinal result.Treediff.Diff.matching;
        })
      [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  let windows =
    List.map
      (fun window ->
        let config =
          { (Doc.config_with ()) with Treediff.Config.scan_window = window }
        in
        let row, _ = Measure.pair ~config t1 t2 in
        {
          k = (match window with Some k -> string_of_int k | None -> "inf");
          comparisons = Measure.comparisons row;
          cost = row.Measure.cost;
          ops = row.Measure.d;
        })
      [ Some 0; Some 1; Some 2; Some 4; Some 8; Some 16; None ]
  in
  { thresholds; windows }

let print data =
  print_endline "== Ablation 1: match threshold t (SS5.1 Criterion 2) ==";
  print_endline "   (higher t rejects more internal matches: subtrees rebuilt as ins+del)";
  let a =
    Table.create ~headers:[ "t"; "matched pairs"; "script cost"; "ops"; "moves"; "ins+del" ]
  in
  List.iter
    (fun (r : threshold_row) ->
      Table.add_row a
        [
          Printf.sprintf "%.1f" r.t; Table.cell_int r.matched_pairs;
          Table.cell_float r.cost; Table.cell_int r.ops; Table.cell_int r.moves;
          Table.cell_int r.ins_del;
        ])
    data.thresholds;
  Table.print a;
  print_newline ();
  print_endline "== Ablation 2: A(k) scan window (SS9 optimality/efficiency knob) ==";
  print_endline "   (k = 0: LCS only, cheapest scan; k = inf: the paper's FastMatch)";
  let b = Table.create ~headers:[ "k"; "comparisons"; "script cost"; "ops" ] in
  List.iter
    (fun (r : window_row) ->
      Table.add_row b
        [ r.k; Table.cell_int r.comparisons; Table.cell_float r.cost; Table.cell_int r.ops ])
    data.windows;
  Table.print b;
  print_newline ()

let run () =
  let data = compute () in
  print data;
  data
