module Table = Treediff_util.Table
module Corpus = Treediff_workload.Corpus

type point = { set_name : string; n : int; e : int; measured : int; bound : int }

type data = { points : point list; mean_bound_ratio : float }

let compute () =
  let sets = Corpus.standard () in
  let points =
    List.concat_map
      (fun set ->
        List.map
          (fun (a, b) ->
            let row, _ = Measure.pair a b in
            {
              set_name = set.Corpus.name;
              n = row.Measure.n;
              e = row.Measure.e;
              measured = Measure.comparisons row;
              bound = Measure.analytic_bound row;
            })
          (Corpus.pairs set))
      sets
  in
  let ratios =
    List.filter_map
      (fun p ->
        if p.measured = 0 then None
        else Some (float_of_int p.bound /. float_of_int p.measured))
      points
  in
  let mean_bound_ratio =
    if ratios = [] then 0.0
    else List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
  in
  { points; mean_bound_ratio }

let print data =
  print_endline "== Figure 13(b): FastMatch comparisons vs weighted edit distance ==";
  print_endline
    "   (paper: roughly linear in e with high variance; ~20x below the analytic bound)";
  let t =
    Table.create
      ~headers:[ "set"; "n"; "e"; "comparisons"; "bound (ne+e^2)+2lne"; "bound/measured" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.set_name; Table.cell_int p.n; Table.cell_int p.e; Table.cell_int p.measured;
          Table.cell_int p.bound;
          (if p.measured = 0 then "-"
           else Table.cell_float (float_of_int p.bound /. float_of_int p.measured));
        ])
    data.points;
  Table.print t;
  Printf.printf "\nmean bound/measured ratio: %.1fx (paper: ~20x)\n\n" data.mean_bound_ratio

let run () =
  let data = compute () in
  print data;
  data
