(** Delta-quality comparison (§2's motivating claims): the paper's pipeline
    reports a moved unit as a single MOV; flat diff reports it as a block of
    deleted lines plus a block of inserted lines; Zhang–Shasha (no move
    operation) reports it as subtree delete plus insert.

    Scenarios with known ground truth (one paragraph moved, one sentence
    moved, pure updates, a mixed revision) are run through all three. *)

type scenario = {
  name : string;
  ours_ops : int;
  ours_moves : int;
  ours_updates : int;
  ours_ins_del : int;
  flat_deleted_lines : int;
  flat_inserted_lines : int;
  zs_distance : float;      (** unit-cost ZS edit distance (del+ins+relabel) *)
  hybrid_cost : float;      (** ZS mapping fed into our EditScript (WZS95 route) *)
}

type data = { scenarios : scenario list }

val compute : unit -> data

val print : data -> unit

val run : unit -> data
