(** Appendix A sample run: the TeXbook-excerpt documents of Figures 14 and 15
    run through LaDiff, reproducing the marked-up output of Figure 16 and
    exercising every mark-up convention of Table 2.

    The expected change inventory from the paper's figures: the old first
    section's opening sentence moves into the new "Conclusion" region
    ("Moved from S1"), the exercises sentence moves and is updated at once,
    the "The details" section is inserted, the "In general, the later
    chapters…" sentence is deleted in one version and reinserted, paragraph
    P1 moves, sentence-level updates appear in italics, and so on. *)

type data = {
  output : Treediff_doc.Ladiff.output;
  conventions_seen : (string * bool) list;
      (** which Table 2 devices appear in the rendered LaTeX *)
}

val old_doc : string
(** Figure 14 (old version), as LaTeX source. *)

val new_doc : string
(** Figure 15 (new version), as LaTeX source. *)

val compute : unit -> data

val print : data -> unit

val run : unit -> data
