(** Shared measurement harness: run the pipeline on a document pair and
    collect the quantities the §8 experiments report. *)

type row = {
  n : int;  (** total leaves across both trees — the paper's n *)
  l : int;  (** number of internal-node labels — the paper's l *)
  d : int;  (** unweighted edit distance: operations in the script *)
  e : int;  (** weighted edit distance (§5.3) *)
  leaf_compares : int;   (** r1: compare invocations during matching *)
  partner_checks : int;  (** r2: partner/containment checks during matching *)
  cost : float;          (** §3.2 script cost *)
  inserts : int;
  deletes : int;
  updates : int;
  moves : int;
}

val comparisons : row -> int
(** r1 + r2 — the paper's Fig. 13(b) vertical axis. *)

val analytic_bound : row -> int
(** The §5.3 bound (ne + e²) + 2lne on the comparison count (unit c). *)

val pair :
  ?config:Treediff.Config.t ->
  Treediff_tree.Node.t ->
  Treediff_tree.Node.t ->
  row * Treediff.Diff.t
(** Diff a document pair under the LaDiff config (word-LCS criteria) by
    default. *)
