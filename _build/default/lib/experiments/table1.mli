(** Table 1: upper bound on the percentage of paragraphs that may be
    mismatched, as a function of the match threshold t ∈ {0.5 … 1.0}.

    The paper's necessary condition: a paragraph can be mismatched only if it
    has "more than a certain number of children that violate Matching
    Criterion 3, where the exact number depends on t".  Operationalised (see
    DESIGN.md): a sentence violates MC3 when ≥ 2 sentences on the other side
    are within compare-distance 1; paragraph x may be mismatched at threshold
    t iff its violating-sentence count exceeds (1 − t)·|x|.  The bound is
    monotone increasing in t — the paper reports 0/1/3/7/9/10 % for
    t = 0.5 … 1.0.

    Run on a corpus with a small near-duplicate sentence rate (real prose
    contains some; the paper's legal-documents remark), since violation-free
    text bounds every threshold at zero. *)

type datapoint = { t : float; mismatch_bound_pct : float }

type data = {
  rows : datapoint list;
  violating_leaf_pct : float;  (** share of sentences violating MC3 *)
}

val compute : ?duplicate_rate:float -> unit -> data
(** Default [duplicate_rate] 0.02. *)

val print : data -> unit

val run : unit -> data
