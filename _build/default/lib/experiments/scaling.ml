module Table = Treediff_util.Table
module P = Treediff_util.Prng
module Tree = Treediff_tree.Tree
module Node = Treediff_tree.Node
module Docgen = Treediff_workload.Docgen
module Mutate = Treediff_workload.Mutate

type point = {
  sentences : int;
  fast_seconds : float;
  fast_comparisons : int;
  zs_seconds : float option;
}

type data = { points : point list }

(* A document profile sized to roughly [n] sentences. *)
let profile_for n =
  let sections = max 1 (n / 10) in
  { Docgen.medium with Docgen.sections; subsections_per = 0; paragraphs_per = 5;
    sentences_per = 6; list_rate = 0.0; duplicate_rate = 0.0 }

(* Best of [reps] runs: one-shot CPU timings are dominated by warm-up and GC
   noise at these sizes. *)
let time ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Sys.time () in
    let x = f () in
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt;
    result := Some x
  done;
  match !result with Some x -> (x, !best) | None -> assert false

let compute ?(zs_cutoff = 500) ?(sizes = [ 50; 100; 200; 400; 800; 1600 ]) () =
  let points =
    List.map
      (fun size ->
        let g = P.create (size * 17 + 5) in
        let gen = Tree.gen () in
        let t1 = Docgen.generate g gen (profile_for size) in
        (* Sentence-level edits only: holds the weighted edit distance e
           roughly constant so n is the only variable in the sweep. *)
        let sentence_mix =
          {
            Mutate.sentence_update = 0.4; sentence_insert = 0.2; sentence_delete = 0.2;
            sentence_move = 0.2; paragraph_insert = 0.0; paragraph_delete = 0.0;
            paragraph_move = 0.0; section_shuffle = 0.0;
          }
        in
        let t2, _ = Mutate.mutate ~mix:sentence_mix g gen t1 ~actions:12 in
        let sentences = List.length (Node.leaves t1) in
        let row_result, fast_seconds = time (fun () -> Measure.pair t1 t2) in
        let row, _ = row_result in
        let zs_seconds =
          if sentences > zs_cutoff then None
          else
            let _, secs =
              time (fun () -> Treediff_zs.Zhang_shasha.mapping t1 t2)
            in
            Some secs
        in
        { sentences; fast_seconds; fast_comparisons = Measure.comparisons row; zs_seconds })
      sizes
  in
  { points }

let print data =
  print_endline "== Scaling: FastMatch+EditScript vs Zhang-Shasha [ZS89] ==";
  print_endline "   (paper SS2: ours O(ne+e^2); ZS89 at least quadratic in n)";
  let t =
    Table.create
      ~headers:[ "sentences"; "ours (s)"; "ours comparisons"; "ZS89 (s)"; "ZS/ours" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Table.cell_int p.sentences;
          Table.cell_float ~decimals:4 p.fast_seconds;
          Table.cell_int p.fast_comparisons;
          (match p.zs_seconds with Some s -> Table.cell_float ~decimals:4 s | None -> "(skipped)");
          (match p.zs_seconds with
          | Some s when p.fast_seconds > 0.0 -> Table.cell_float ~decimals:1 (s /. p.fast_seconds)
          | _ -> "-");
        ])
    data.points;
  Table.print t;
  print_newline ()

let run () =
  let data = compute () in
  print data;
  data
