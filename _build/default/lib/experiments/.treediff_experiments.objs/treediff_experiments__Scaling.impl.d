lib/experiments/scaling.ml: List Measure Sys Treediff_tree Treediff_util Treediff_workload Treediff_zs
