lib/experiments/quality.mli:
