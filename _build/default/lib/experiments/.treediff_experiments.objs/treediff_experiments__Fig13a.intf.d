lib/experiments/fig13a.mli:
