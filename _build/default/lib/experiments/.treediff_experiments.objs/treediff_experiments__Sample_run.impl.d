lib/experiments/sample_run.ml: List Printf String Treediff Treediff_doc Treediff_edit
