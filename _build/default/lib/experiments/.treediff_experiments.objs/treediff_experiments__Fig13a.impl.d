lib/experiments/fig13a.ml: List Measure Treediff_util Treediff_workload
