lib/experiments/table1.ml: Hashtbl List Printf String Treediff_doc Treediff_matching Treediff_tree Treediff_util Treediff_workload
