lib/experiments/measure.mli: Treediff Treediff_tree
