lib/experiments/fig13b.mli:
