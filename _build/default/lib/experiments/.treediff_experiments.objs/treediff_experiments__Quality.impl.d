lib/experiments/quality.ml: Array List Measure String Treediff Treediff_doc Treediff_edit Treediff_textdiff Treediff_tree Treediff_util Treediff_workload Treediff_zs
