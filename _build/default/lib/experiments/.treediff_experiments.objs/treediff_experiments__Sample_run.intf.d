lib/experiments/sample_run.mli: Treediff_doc
