lib/experiments/optimality.ml: Array Hashtbl List Measure Printf Treediff Treediff_doc Treediff_edit Treediff_lcs Treediff_matching Treediff_tree Treediff_util Treediff_workload
