lib/experiments/scaling.mli:
