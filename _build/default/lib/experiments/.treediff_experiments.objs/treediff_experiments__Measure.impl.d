lib/experiments/measure.ml: List Treediff Treediff_doc Treediff_edit Treediff_matching Treediff_tree Treediff_util
