lib/experiments/ablation.mli:
