lib/experiments/optimality.mli: Treediff_matching Treediff_tree
