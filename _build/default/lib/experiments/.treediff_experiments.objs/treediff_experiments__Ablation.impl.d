lib/experiments/ablation.ml: List Measure Printf Treediff Treediff_doc Treediff_matching Treediff_tree Treediff_util Treediff_workload
