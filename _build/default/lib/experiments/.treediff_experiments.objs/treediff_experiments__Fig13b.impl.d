lib/experiments/fig13b.ml: List Measure Printf Treediff_util Treediff_workload
