(** Optimality checks and ablations.

    1. {b Matcher agreement} (Theorem 5.2): when Matching Criteria 1–3 hold,
       Match and FastMatch find the same (unique maximal) matching, so their
       scripts cost the same; FastMatch just gets there with far fewer
       comparisons.
    2. {b Post-processing ablation} (§8): on corpora with MC3 violations,
       the repair pass lowers script cost by re-pointing propagated
       mismatches; on clean corpora it is a no-op.
    3. {b Conformity lower bound} (Theorem C.2): every conforming script
       must contain one insert per unmatched new node, one delete per
       unmatched old node and one move per matched pair with unmatched
       parents; our scripts meet that bound exactly on structural
       operations. *)

type agreement_row = {
  pair_name : string;
  fast_cost : float;
  simple_cost : float;
  agree : bool;            (** identical matchings *)
  fast_comparisons : int;
  simple_comparisons : int;
}

type ablation_row = {
  duplicate_rate : float;
  cost_with_postprocess : float;
  cost_without : float;
  fixes : int;             (** pairs re-pointed by the repair pass *)
}

type bound_row = {
  pair_name : string;
  structural_ops : int;    (** ins + del + mov in our script *)
  lower_bound : int;       (** forced ins + del + inter-parent moves + LCS intra moves *)
  meets_bound : bool;
}

type data = {
  agreement : agreement_row list;
  ablation : ablation_row list;
  bounds : bound_row list;
}

val structural_lower_bound :
  matching:Treediff_matching.Matching.t ->
  Treediff_tree.Node.t ->
  Treediff_tree.Node.t ->
  int
(** The Theorem C.2 lower bound on structural operations (inserts + deletes
    + moves) for any script conforming to [matching]: one insert per
    unmatched new node, one delete per unmatched old node, one move per
    matched pair with unmatched parents, plus the LCS-minimal intra-parent
    moves.  Exposed for the test suite. *)

val compute : unit -> data

val print : data -> unit

val run : unit -> data
