(** Scaling comparison: the paper's FastMatch+EditScript pipeline,
    O(ne + e²), against Zhang–Shasha's O(n²·…) general algorithm (§2).

    Documents of increasing size receive a fixed number of edits; we measure
    wall-clock time and the FastMatch comparison count.  Expected shape: our
    pipeline grows roughly linearly in n at fixed e, ZS at least
    quadratically, with the crossover far below laptop-scale documents —
    "in applications with large amounts of data … we would use our
    algorithm". *)

type point = {
  sentences : int;        (** document size (leaves in the old version) *)
  fast_seconds : float;
  fast_comparisons : int;
  zs_seconds : float option;  (** None above the ZS size cutoff *)
}

type data = { points : point list }

val compute : ?zs_cutoff:int -> ?sizes:int list -> unit -> data
(** Defaults: sizes [50; 100; 200; 400; 800; 1600], ZS run only up to 500 sentences. *)

val print : data -> unit

val run : unit -> data
