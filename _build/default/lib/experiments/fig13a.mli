(** Figure 13(a): weighted edit distance e versus unweighted edit distance d,
    for all version pairs within each of the three document sets.

    The paper finds the relationship close to linear, insensitive to document
    size, with average e/d ≈ 3.4.  This experiment reproduces the series and
    reports the per-set and overall e/d. *)

type point = { set_name : string; n : int; d : int; e : int }

type data = {
  points : point list;
  ratio_by_set : (string * float) list;  (** mean e/d per set *)
  ratio_overall : float;
}

val compute : unit -> data

val print : data -> unit

val run : unit -> data
(** [compute] then [print]. *)
