module Table = Treediff_util.Table
module Node = Treediff_tree.Node
module Criteria = Treediff_matching.Criteria
module Corpus = Treediff_workload.Corpus
module Docgen = Treediff_workload.Docgen
module Doc = Treediff_doc.Doc_tree

type datapoint = { t : float; mismatch_bound_pct : float }

type data = { rows : datapoint list; violating_leaf_pct : float }

let thresholds = [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

(* Per tree side: for each paragraph, its sentence count and how many of its
   sentences violate MC3 (have >= 2 close counterparts on the other side). *)
let paragraph_profile ctx ~old_side root =
  let violating = Criteria.mc3_violating_leaves ctx ~old_side in
  let vio = Hashtbl.create 64 in
  List.iter (fun (n : Node.t) -> Hashtbl.replace vio n.id ()) violating;
  List.filter_map
    (fun (p : Node.t) ->
      if String.equal p.label Doc.paragraph then
        let sentences = Node.leaves p in
        let nvio = List.length (List.filter (fun (s : Node.t) -> Hashtbl.mem vio s.id) sentences) in
        Some (List.length sentences, nvio)
      else None)
    (Node.preorder root)

let compute ?(duplicate_rate = 0.02) () =
  let profile = { Docgen.medium with Docgen.duplicate_rate } in
  let set =
    Corpus.make ~name:"table1" ~seed:404 ~profile ~versions:4 ~edits_per_version:15
  in
  let pairs = Corpus.consecutive_pairs set in
  let profiles =
    List.concat_map
      (fun (t1, t2) ->
        let ctx = Criteria.ctx Doc.criteria ~t1 ~t2 in
        paragraph_profile ctx ~old_side:true t1 @ paragraph_profile ctx ~old_side:false t2)
      pairs
  in
  let total = List.length profiles in
  let rows =
    List.map
      (fun t ->
        let mismatched =
          List.length
            (List.filter
               (fun (size, nvio) ->
                 float_of_int nvio > (1.0 -. t) *. float_of_int size)
               profiles)
        in
        { t; mismatch_bound_pct = 100.0 *. float_of_int mismatched /. float_of_int (max 1 total) })
      thresholds
  in
  let total_sentences = List.fold_left (fun acc (s, _) -> acc + s) 0 profiles in
  let total_violating = List.fold_left (fun acc (_, v) -> acc + v) 0 profiles in
  {
    rows;
    violating_leaf_pct =
      100.0 *. float_of_int total_violating /. float_of_int (max 1 total_sentences);
  }

let print data =
  print_endline "== Table 1: upper bound on mismatched paragraphs vs match threshold t ==";
  print_endline "   (paper: 0 / 1 / 3 / 7 / 9 / 10 %, monotone increasing in t)";
  let t = Table.create ~headers:("Match threshold (t):" :: List.map (fun r -> Printf.sprintf "%.1f" r.t) data.rows) in
  Table.add_row t
    ("Upper bound on mismatches (%):"
    :: List.map (fun r -> Printf.sprintf "%.1f" r.mismatch_bound_pct) data.rows);
  Table.print t;
  Printf.printf "\nsentences violating Matching Criterion 3: %.1f%%\n\n" data.violating_leaf_pct

let run () =
  let data = compute () in
  print data;
  data
