(** Character-level edit distance, as an alternative leaf [compare] function.

    The paper's cost model (§3.2) only requires {e some} distance in [\[0,2\]];
    word-LCS ({!Word_compare}) suits prose, while character-level distance
    suits short identifiers, titles and attribute values (the
    configuration-management domain of §1).  Classic O(n·m) dynamic
    programming with two rows. *)

val distance : string -> string -> int
(** Raw Levenshtein distance (unit insert/delete/substitute). *)

val normalized : string -> string -> float
(** [2·distance / max (len a) (len b)] ∈ [\[0,2\]]: 0 iff equal, 2 when
    nothing aligns (disjoint same-length strings, or one side empty).  Two
    empty strings are at distance 0. *)

val similar : ?threshold:float -> string -> string -> bool
(** [normalized a b <= threshold] (default 0.5). *)
