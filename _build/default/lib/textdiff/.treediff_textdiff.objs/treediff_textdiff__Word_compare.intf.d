lib/textdiff/word_compare.mli:
