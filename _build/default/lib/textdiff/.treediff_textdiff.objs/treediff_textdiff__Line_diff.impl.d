lib/textdiff/line_diff.ml: Array Buffer List String Treediff_lcs
