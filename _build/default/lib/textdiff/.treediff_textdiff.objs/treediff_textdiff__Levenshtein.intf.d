lib/textdiff/levenshtein.mli:
