lib/textdiff/levenshtein.ml: Array String
