lib/textdiff/word_compare.ml: Array Char List String Treediff_lcs
