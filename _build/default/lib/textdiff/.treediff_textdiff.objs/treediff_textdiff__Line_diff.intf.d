lib/textdiff/line_diff.mli:
