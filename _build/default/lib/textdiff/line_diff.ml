module Subseq = Treediff_lcs.Subseq

type hunk =
  | Equal of string array
  | Delete of string array
  | Insert of string array
  | Replace of string array * string array

let lines s =
  let l = String.split_on_char '\n' s in
  let l = match List.rev l with "" :: rest -> List.rev rest | _ -> l in
  Array.of_list l

let diff old_text new_text =
  let a = lines old_text and b = lines new_text in
  let items = Subseq.diff ~equal:String.equal a b in
  (* Group runs of Keep/Del/Ins, merging adjacent del+ins into Replace. *)
  let hunks = ref [] in
  let dels = ref [] and inss = ref [] and eqs = ref [] in
  let flush_eq () =
    if !eqs <> [] then begin
      hunks := Equal (Array.of_list (List.rev !eqs)) :: !hunks;
      eqs := []
    end
  in
  let flush_change () =
    (match (List.rev !dels, List.rev !inss) with
    | [], [] -> ()
    | d, [] -> hunks := Delete (Array.of_list d) :: !hunks
    | [], i -> hunks := Insert (Array.of_list i) :: !hunks
    | d, i -> hunks := Replace (Array.of_list d, Array.of_list i) :: !hunks);
    dels := [];
    inss := []
  in
  List.iter
    (fun item ->
      match item with
      | Subseq.Keep (i, _) ->
        flush_change ();
        eqs := a.(i) :: !eqs
      | Subseq.Del i ->
        flush_eq ();
        dels := a.(i) :: !dels
      | Subseq.Ins j ->
        flush_eq ();
        inss := b.(j) :: !inss)
    items;
  flush_change ();
  flush_eq ();
  List.rev !hunks

let stats hunks =
  List.fold_left
    (fun (d, i) h ->
      match h with
      | Equal _ -> (d, i)
      | Delete a -> (d + Array.length a, i)
      | Insert a -> (d, i + Array.length a)
      | Replace (a, b) -> (d + Array.length a, i + Array.length b))
    (0, 0) hunks

let render hunks =
  let buf = Buffer.create 256 in
  let emit prefix arr =
    Array.iter
      (fun l ->
        Buffer.add_string buf prefix;
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      arr
  in
  List.iter
    (fun h ->
      match h with
      | Equal a -> emit "  " a
      | Delete a -> emit "- " a
      | Insert a -> emit "+ " a
      | Replace (a, b) ->
        emit "- " a;
        emit "+ " b)
    hunks;
  Buffer.contents buf
