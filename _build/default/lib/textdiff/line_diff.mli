(** A flat, line-oriented differ in the mould of GNU diff — the §2 baseline.

    It computes the line LCS with Myers' algorithm and reports everything
    else as deletions and insertions.  Being structure-blind, it exhibits
    exactly the weaknesses the paper motivates LaDiff with: a moved
    paragraph becomes a block delete plus a block insert, and nothing stops
    a section heading from "matching" an item line. *)

type hunk =
  | Equal of string array          (** common run *)
  | Delete of string array         (** lines only in the old text *)
  | Insert of string array         (** lines only in the new text *)
  | Replace of string array * string array
      (** adjacent delete+insert, as diff-style change blocks *)

val lines : string -> string array
(** Split on ['\n'], dropping a single trailing empty line. *)

val diff : string -> string -> hunk list
(** [diff old_text new_text]. *)

val stats : hunk list -> int * int
(** [(deleted_lines, inserted_lines)]. *)

val render : hunk list -> string
(** Classic unified-ish rendering: ["  line"], ["- line"], ["+ line"]. *)
