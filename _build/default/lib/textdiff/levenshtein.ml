let distance a b =
  let n = String.length a and m = String.length b in
  if n = 0 then m
  else if m = 0 then n
  else begin
    let prev = Array.init (m + 1) (fun j -> j) in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      cur.(0) <- i;
      for j = 1 to m do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (prev.(j) + 1) (cur.(j - 1) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let normalized a b =
  let m = max (String.length a) (String.length b) in
  if m = 0 then 0.0 else 2.0 *. float_of_int (distance a b) /. float_of_int m

let similar ?(threshold = 0.5) a b = normalized a b <= threshold
