let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '\'' | '-' -> true
  (* UTF-8 continuation and lead bytes: keep multibyte words whole *)
  | c when Char.code c >= 0x80 -> true
  | _ -> false

let words s =
  let n = String.length s in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && not (is_word_char s.[!i]) do
      incr i
    done;
    let start = !i in
    while !i < n && is_word_char s.[!i] do
      incr i
    done;
    if !i > start then acc := String.lowercase_ascii (String.sub s start (!i - start)) :: !acc
  done;
  Array.of_list (List.rev !acc)

let distance a b =
  let wa = words a and wb = words b in
  let na = Array.length wa and nb = Array.length wb in
  if na = 0 && nb = 0 then 0.0
  else
    let c = Treediff_lcs.Myers.lcs_length ~equal:String.equal wa wb in
    float_of_int (na + nb - (2 * c)) /. float_of_int (max na nb)

let similar ?(threshold = 0.5) a b = distance a b <= threshold
