(** LaDiff's sentence comparison function (§7): "first computes the LCS of
    the words in the sentences, then counts the number of words not in the
    LCS."

    The count is normalised so the result lies in the cost model's [\[0,2\]]
    range: with [n₁], [n₂] the word counts and [c] the LCS length,
    [distance = (n₁ + n₂ − 2c) / max(n₁, n₂)].  Identical sentences score 0;
    sentences with no words in common score ≥ 1 (exactly 2 when equal
    length); the [≤ f ≤ 1] matching threshold of Criterion 1 then demands
    that at least about half the words survive. *)

val words : string -> string array
(** Tokenise on whitespace, lowercase, stripping punctuation at token edges.
    [words "The cat, the hat!"] = [[|"the"; "cat"; "the"; "hat"|]]. *)

val distance : string -> string -> float
(** Word-LCS distance in [\[0,2\]].  Two empty sentences are identical (0). *)

val similar : ?threshold:float -> string -> string -> bool
(** [distance a b <= threshold] (default [0.5]). *)
