lib/zs/zhang_shasha.mli: Treediff_matching Treediff_tree
