lib/zs/zhang_shasha.ml: Array Float Hashtbl List Queue String Treediff_matching Treediff_tree
