type t = {
  c_ins : float;
  c_del : float;
  c_mov : float;
  compare : string -> string -> float;
}

let all_or_nothing a b = if String.equal a b then 0.0 else 2.0

let unit = { c_ins = 1.0; c_del = 1.0; c_mov = 1.0; compare = all_or_nothing }

let with_compare compare = { unit with compare }

let check t =
  if t.c_ins < 0.0 || t.c_del < 0.0 || t.c_mov < 0.0 then
    invalid_arg "Cost.check: structural costs must be non-negative"
