(** The four edit operations of §3.2.

    Positions [pos] are 1-based, following the paper: [INS((x,l,v),y,k)]
    makes [x] the [k]th child of [y].  A move detaches the subtree first and
    then inserts, so for an intra-parent move [pos] indexes the child list
    without the moved node. *)

type t =
  | Insert of { id : int; label : string; value : string; parent : int; pos : int }
      (** [INS((id,label,value), parent, pos)] — insert a new leaf. *)
  | Delete of { id : int }  (** [DEL(id)] — delete a leaf. *)
  | Update of { id : int; value : string }  (** [UPD(id, value)] — new value. *)
  | Move of { id : int; parent : int; pos : int }
      (** [MOV(id, parent, pos)] — move the subtree rooted at [id]. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering, e.g. [INS((21,S,"g"),3,3)]. *)

val to_string : t -> string

val is_structural : t -> bool
(** True for insert, delete and move — the operations that change shape. *)
