(** The §3.2 cost model for edit scripts.

    Insert, delete and move are unit cost; updating node [x] from value [v]
    to [v'] costs [compare v v' ∈ \[0,2\]].  A compare below 1 means
    move-plus-update beats delete-plus-insert; above 1 the reverse — this is
    the hinge the matching criteria (§5.1) turn on. *)

type t = {
  c_ins : float;
  c_del : float;
  c_mov : float;
  compare : string -> string -> float;  (** distance in [\[0,2\]] *)
}

val unit : t
(** Unit structural costs with the all-or-nothing compare
    ([0.] on equal values, [2.] otherwise). *)

val with_compare : (string -> string -> float) -> t
(** Unit structural costs with a custom value-distance function. *)

val check : t -> unit
(** @raise Invalid_argument if any structural cost is negative. *)
