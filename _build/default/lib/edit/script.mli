(** Edit scripts: sequences of edit operations, their application to trees,
    and their cost and weighted-distance measures.

    Application validates every precondition of §3.2 — inserts and deletes
    touch leaves only, positions are in range, moves never take a node into
    its own subtree — and raises {!Apply_error} on violation, so a
    malformed script can never silently corrupt a tree. *)

type t = Op.t list

exception Apply_error of string

(** Aggregate measurements of a script against the tree it applies to. *)
type measure = {
  cost : float;        (** §3.2 script cost under the given model *)
  weighted : int;      (** §5.3 weighted edit distance e: 1 per ins/del, [|x|] per move, 0 per update *)
  inserts : int;
  deletes : int;
  updates : int;
  moves : int;
}

val unweighted : measure -> int
(** The paper's d: total number of operations. *)

val apply_into : root:Treediff_tree.Node.t -> index:(int, Treediff_tree.Node.t) Hashtbl.t -> Op.t -> unit
(** Apply one operation in place, maintaining [index].
    @raise Apply_error if a precondition fails. *)

val apply : Treediff_tree.Node.t -> t -> Treediff_tree.Node.t
(** [apply t1 script] deep-copies [t1], applies the whole script, and returns
    the transformed root.  The input tree is not modified.
    @raise Apply_error if any operation is invalid. *)

val measure : ?model:Cost.t -> Treediff_tree.Node.t -> t -> measure
(** [measure t1 script] applies the script to a copy of [t1] (to observe old
    values for update costs and subtree leaf counts for move weights) and
    returns its measurements.  Default model: {!Cost.unit}.
    @raise Apply_error if any operation is invalid. *)

val cost : ?model:Cost.t -> Treediff_tree.Node.t -> t -> float

val pp : Format.formatter -> t -> unit

val to_string : t -> string
