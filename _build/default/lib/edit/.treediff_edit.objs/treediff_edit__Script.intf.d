lib/edit/script.mli: Cost Format Hashtbl Op Treediff_tree
