lib/edit/script_io.mli: Script
