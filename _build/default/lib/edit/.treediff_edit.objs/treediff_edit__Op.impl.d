lib/edit/op.ml: Format
