lib/edit/cost.ml: String
