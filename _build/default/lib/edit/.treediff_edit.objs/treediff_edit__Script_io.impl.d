lib/edit/script_io.ml: Buffer Char List Op Printf String
