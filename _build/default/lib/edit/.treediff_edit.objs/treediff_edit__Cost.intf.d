lib/edit/cost.mli:
