lib/edit/script.ml: Cost Format Hashtbl List Op Printf Treediff_tree
