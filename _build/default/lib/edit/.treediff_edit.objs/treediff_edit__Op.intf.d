lib/edit/op.mli: Format
