type t =
  | Insert of { id : int; label : string; value : string; parent : int; pos : int }
  | Delete of { id : int }
  | Update of { id : int; value : string }
  | Move of { id : int; parent : int; pos : int }

let pp ppf = function
  | Insert { id; label; value; parent; pos } ->
    if value = "" then Format.fprintf ppf "INS((%d,%s),%d,%d)" id label parent pos
    else Format.fprintf ppf "INS((%d,%s,%S),%d,%d)" id label value parent pos
  | Delete { id } -> Format.fprintf ppf "DEL(%d)" id
  | Update { id; value } -> Format.fprintf ppf "UPD(%d,%S)" id value
  | Move { id; parent; pos } -> Format.fprintf ppf "MOV(%d,%d,%d)" id parent pos

let to_string op = Format.asprintf "%a" pp op

let is_structural = function
  | Insert _ | Delete _ | Move _ -> true
  | Update _ -> false
