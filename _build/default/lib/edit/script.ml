module Node = Treediff_tree.Node
module Tree = Treediff_tree.Tree

type t = Op.t list

exception Apply_error of string

type measure = {
  cost : float;
  weighted : int;
  inserts : int;
  deletes : int;
  updates : int;
  moves : int;
}

let unweighted m = m.inserts + m.deletes + m.updates + m.moves

let err fmt = Printf.ksprintf (fun s -> raise (Apply_error s)) fmt

let lookup index id =
  match Hashtbl.find_opt index id with
  | Some n -> n
  | None -> err "no node with id %d" id

let apply_into ~root ~index op =
  match op with
  | Op.Insert { id; label; value; parent; pos } ->
    if Hashtbl.mem index id then err "insert: id %d already present" id;
    let p = lookup index parent in
    let k = pos - 1 in
    if k < 0 || k > Node.child_count p then
      err "insert: position %d out of range at node %d (arity %d)" pos parent
        (Node.child_count p);
    let n = Node.make ~id ~label ~value () in
    Node.insert_child p k n;
    Hashtbl.replace index id n
  | Op.Delete { id } ->
    let n = lookup index id in
    if not (Node.is_leaf n) then err "delete: node %d is not a leaf" id;
    if n.Node.id = root.Node.id then err "delete: cannot delete the root";
    Node.detach n;
    Hashtbl.remove index id
  | Op.Update { id; value } ->
    let n = lookup index id in
    n.Node.value <- value
  | Op.Move { id; parent; pos } ->
    let n = lookup index id in
    let p = lookup index parent in
    if n.Node.id = p.Node.id || Node.is_ancestor n p then
      err "move: node %d into its own subtree (under %d)" id parent;
    if n.Node.id = root.Node.id then err "move: cannot move the root";
    Node.detach n;
    let k = pos - 1 in
    if k < 0 || k > Node.child_count p then
      err "move: position %d out of range at node %d (arity %d)" pos parent
        (Node.child_count p);
    Node.insert_child p k n

let apply t1 script =
  let root = Tree.copy t1 in
  let index = Tree.index_by_id root in
  List.iter (apply_into ~root ~index) script;
  root

let measure ?(model = Cost.unit) t1 script =
  Cost.check model;
  let root = Tree.copy t1 in
  let index = Tree.index_by_id root in
  let m =
    ref { cost = 0.0; weighted = 0; inserts = 0; deletes = 0; updates = 0; moves = 0 }
  in
  List.iter
    (fun op ->
      (* Measure before applying: update needs the old value, move needs the
         subtree's leaf count at move time. *)
      (match op with
      | Op.Insert _ ->
        m := { !m with cost = !m.cost +. model.Cost.c_ins; weighted = !m.weighted + 1;
               inserts = !m.inserts + 1 }
      | Op.Delete _ ->
        m := { !m with cost = !m.cost +. model.Cost.c_del; weighted = !m.weighted + 1;
               deletes = !m.deletes + 1 }
      | Op.Update { id; value } ->
        let n = lookup index id in
        let c = model.Cost.compare n.Node.value value in
        m := { !m with cost = !m.cost +. c; updates = !m.updates + 1 }
      | Op.Move { id; _ } ->
        let n = lookup index id in
        m := { !m with cost = !m.cost +. model.Cost.c_mov;
               weighted = !m.weighted + Node.leaf_count n; moves = !m.moves + 1 });
      apply_into ~root ~index op)
    script;
  !m

let cost ?model t1 script = (measure ?model t1 script).cost

let pp ppf script =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i op -> Format.fprintf ppf "%s%a" (if i > 0 then "; " else "") Op.pp op)
    script;
  Format.fprintf ppf "@]"

let to_string script = Format.asprintf "%a" pp script
