let check root =
  let seen = Hashtbl.create 64 in
  let exception Bad of string in
  let rec walk (n : Node.t) =
    if Hashtbl.mem seen n.id then
      raise (Bad (Printf.sprintf "duplicate node id %d (sharing or cycle)" n.id));
    Hashtbl.replace seen n.id ();
    List.iter
      (fun (c : Node.t) ->
        (match c.parent with
        | Some p when p == n -> ()
        | Some p ->
          raise
            (Bad
               (Printf.sprintf "node %d's parent field points at %d, not %d" c.id
                  p.Node.id n.id))
        | None -> raise (Bad (Printf.sprintf "node %d has no parent field but is a child of %d" c.id n.id)));
        walk c)
      (Node.children n)
  in
  match walk root with
  | () -> if root.Node.parent = None then Ok () else Error "root has a parent"
  | exception Bad msg -> Error msg

let check_exn root =
  match check root with Ok () -> () | Error msg -> invalid_arg ("Invariant: " ^ msg)
