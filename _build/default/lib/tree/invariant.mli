(** Structural well-formedness checks for trees.

    The edit machinery maintains these invariants; tests (and debugging
    sessions) assert them after every mutation:
    - every child's [parent] field points back at its parent;
    - no node appears twice (no sharing, no cycles);
    - node identifiers are unique within the tree. *)

val check : Node.t -> (unit, string) result

val check_exn : Node.t -> unit
(** @raise Invalid_argument with the violation description. *)
