(** Textual codec for trees: a compact s-expression form.

    Grammar: [tree ::= "(" label [string-literal] tree* ")"].  Labels are
    bare atoms; values are double-quoted with OCaml-style escapes.  Node
    identifiers are assigned at parse time from a generator and are not part
    of the syntax (the format describes keyless data).

    Example: [(D (P (S "a") (S "b")) (P (S "c")))]. *)

exception Parse_error of string
(** Raised with a position-annotated message on malformed input. *)

val parse : Tree.gen -> string -> Node.t
(** @raise Parse_error on malformed input or trailing garbage. *)

val to_string : ?indent:bool -> Node.t -> string
(** [to_string t] renders in the codec grammar; [~indent:true] (default)
    pretty-prints one node per line. *)
