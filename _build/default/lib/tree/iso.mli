(** Tree isomorphism — equality up to node identifiers (§3.1).

    Two trees are isomorphic iff they agree on labels, values and child order
    everywhere.  This is the success criterion of an edit script: applying the
    script to [T1] must yield a tree isomorphic to [T2]. *)

val equal : Node.t -> Node.t -> bool

val first_difference : Node.t -> Node.t -> string option
(** A human-readable description of the first structural difference found
    (preorder), or [None] if isomorphic.  For test diagnostics. *)
