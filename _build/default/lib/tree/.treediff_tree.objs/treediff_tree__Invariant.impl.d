lib/tree/invariant.ml: Hashtbl List Node Printf
