lib/tree/codec.ml: Buffer List Node Printf String Tree
