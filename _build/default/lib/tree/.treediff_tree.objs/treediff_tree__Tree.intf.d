lib/tree/tree.mli: Hashtbl Node
