lib/tree/iso.mli: Node
