lib/tree/codec.mli: Node Tree
