lib/tree/node.ml: Format List Queue Treediff_util
