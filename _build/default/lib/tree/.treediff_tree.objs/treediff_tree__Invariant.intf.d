lib/tree/invariant.mli: Node
