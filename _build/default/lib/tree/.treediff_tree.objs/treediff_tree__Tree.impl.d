lib/tree/tree.ml: Hashtbl List Node
