lib/tree/node.mli: Format Treediff_util
