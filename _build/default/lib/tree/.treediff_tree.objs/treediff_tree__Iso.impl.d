lib/tree/iso.ml: List Node Printf String
