let rec equal (a : Node.t) (b : Node.t) =
  String.equal a.label b.label
  && String.equal a.value b.value
  && Node.child_count a = Node.child_count b
  && List.for_all2 equal (Node.children a) (Node.children b)

let first_difference a b =
  let rec walk path (a : Node.t) (b : Node.t) =
    if not (String.equal a.label b.label) then
      Some (Printf.sprintf "%s: label %S vs %S" path a.label b.label)
    else if not (String.equal a.value b.value) then
      Some (Printf.sprintf "%s: value %S vs %S" path a.value b.value)
    else if Node.child_count a <> Node.child_count b then
      Some
        (Printf.sprintf "%s: child count %d vs %d" path (Node.child_count a)
           (Node.child_count b))
    else
      let rec loop i = function
        | [], [] -> None
        | ca :: ra, cb :: rb -> (
          match walk (Printf.sprintf "%s/%d" path i) ca cb with
          | Some _ as d -> d
          | None -> loop (i + 1) (ra, rb))
        | _ -> assert false
      in
      loop 0 (Node.children a, Node.children b)
  in
  walk "" a b
