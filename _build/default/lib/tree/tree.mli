(** Whole-tree utilities: construction, copying, indexing.

    A tree is represented by its root {!Node.t}; this module adds the
    operations that concern the tree as a value rather than a single node. *)

type gen
(** Identifier generator.  Every tree built for one comparison should draw
    from one generator so identifiers are unique across both trees. *)

val gen : ?start:int -> unit -> gen

val fresh_id : gen -> int

val node : gen -> string -> ?value:string -> Node.t list -> Node.t
(** [node g label ~value children] builds a node with fresh id and attaches
    [children] in order — a compact construction DSL for tests and parsers. *)

val leaf : gen -> string -> string -> Node.t
(** [leaf g label value] is [node g label ~value []]. *)

val copy : Node.t -> Node.t
(** Deep structural copy preserving identifiers, labels and values.  The copy
    shares nothing mutable with the original, so it can be used as the
    edit-script generator's working tree. *)

val max_id : Node.t -> int

val size : Node.t -> int

val index_by_id : Node.t -> (int, Node.t) Hashtbl.t
(** Identifier → node map over the subtree.  Computed eagerly; invalidated by
    subsequent mutation. *)

val find_by_id : Node.t -> int -> Node.t option

val relabel_ids : gen -> Node.t -> Node.t
(** Copy of the tree with all-new identifiers drawn from [gen] — used to
    simulate a "new version" whose identifiers are unrelated to the old
    version's (the keyless-data scenario of §5). *)
