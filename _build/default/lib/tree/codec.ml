exception Parse_error of string

type token = Lparen | Rparen | Atom of string | Str of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_atom_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | '/' | '+' | ':' -> true
    | '(' | ')' | '"' | ' ' | '\t' | '\n' | '\r' -> false
    | _ -> true
  in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
      toks := (Lparen, !i) :: !toks;
      incr i
    | ')' ->
      toks := (Rparen, !i) :: !toks;
      incr i
    | '"' ->
      let start = !i in
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match s.[!i] with
        | '"' -> closed := true
        | '\\' ->
          if !i + 1 >= n then fail start "unterminated escape in string literal";
          incr i;
          (match s.[!i] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c -> fail !i (Printf.sprintf "unknown escape '\\%c'" c))
        | c -> Buffer.add_char buf c);
        incr i
      done;
      if not !closed then fail start "unterminated string literal";
      toks := (Str (Buffer.contents buf), start) :: !toks
    | c when is_atom_char c ->
      let start = !i in
      while !i < n && is_atom_char s.[!i] do
        incr i
      done;
      toks := (Atom (String.sub s start (!i - start)), start) :: !toks
    | c -> fail !i (Printf.sprintf "unexpected character %C" c));
    ()
  done;
  List.rev !toks

let parse g s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let next () =
    match !toks with
    | [] -> fail (String.length s) "unexpected end of input"
    | t :: rest ->
      toks := rest;
      t
  in
  let rec parse_tree () =
    (match next () with
    | Lparen, _ -> ()
    | _, p -> fail p "expected '('");
    let label =
      match next () with
      | Atom a, _ -> a
      | _, p -> fail p "expected label atom"
    in
    let value =
      match peek () with
      | Some (Str v, _) ->
        ignore (next ());
        v
      | _ -> ""
    in
    let children = ref [] in
    let rec loop () =
      match peek () with
      | Some (Rparen, _) -> ignore (next ())
      | Some (Lparen, _) ->
        children := parse_tree () :: !children;
        loop ()
      | Some (_, p) -> fail p "expected child '(' or ')'"
      | None -> fail (String.length s) "unexpected end of input, missing ')'"
    in
    loop ();
    Tree.node g label ~value (List.rev !children)
  in
  let t = parse_tree () in
  (match peek () with
  | Some (_, p) -> fail p "trailing input after tree"
  | None -> ());
  t

let escape v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let to_string ?(indent = true) t =
  let buf = Buffer.create 256 in
  let rec emit depth (n : Node.t) =
    if indent && depth > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end;
    Buffer.add_char buf '(';
    Buffer.add_string buf n.label;
    if n.value <> "" then begin
      Buffer.add_string buf " \"";
      Buffer.add_string buf (escape n.value);
      Buffer.add_char buf '"'
    end;
    List.iter
      (fun c ->
        if not indent then Buffer.add_char buf ' ';
        emit (depth + 1) c)
      (Node.children n);
    Buffer.add_char buf ')'
  in
  emit 0 t;
  Buffer.contents buf
