module Node = Treediff_tree.Node

let run ctx m =
  let t1 = Criteria.t1_root ctx in
  let t1_index = Treediff_tree.Tree.index_by_id (Criteria.t1_root ctx) in
  let t2_index = Treediff_tree.Tree.index_by_id (Criteria.t2_root ctx) in
  let fixed = ref 0 in
  let visit (x : Node.t) =
    match Matching.partner_of_old m x.id with
    | None -> ()
    | Some yid ->
      let y = Hashtbl.find t2_index yid in
      List.iter
        (fun (c : Node.t) ->
          match Matching.partner_of_old m c.id with
          | None -> ()
          | Some c'id ->
            let c' = Hashtbl.find t2_index c'id in
            let parent_is_y =
              match c'.Node.parent with Some p -> p.Node.id = yid | None -> false
            in
            if not parent_is_y then begin
              let eligible (c'' : Node.t) =
                c''.id <> c'id && Criteria.equal_nodes ctx m c c''
              in
              (* Prefer an unmatched candidate; otherwise swap with a matched
                 one (two crossed duplicates re-pointed in one step). *)
              let unmatched_candidate =
                List.find_opt
                  (fun (c'' : Node.t) -> (not (Matching.matched_new m c''.id)) && eligible c'')
                  (Node.children y)
              in
              match unmatched_candidate with
              | Some c'' ->
                Matching.remove m c.id c'id;
                Matching.add m c.id c''.Node.id;
                incr fixed
              | None -> (
                let swap_candidate =
                  List.find_opt
                    (fun (c'' : Node.t) -> Matching.matched_new m c''.id && eligible c'')
                    (Node.children y)
                in
                match swap_candidate with
                | Some c'' -> (
                  match Matching.partner_of_new m c''.Node.id with
                  | Some aid ->
                    let a = Hashtbl.find t1_index aid in
                    (* Swap partners only if the displaced node may take c'
                       (same label class); both pairs stay criterion-valid. *)
                    if Criteria.equal_nodes ctx m a c' then begin
                      Matching.remove m c.id c'id;
                      Matching.remove m aid c''.Node.id;
                      Matching.add m c.id c''.Node.id;
                      Matching.add m aid c'id;
                      incr fixed
                    end
                  | None -> ())
                | None -> ())
            end)
        (Node.children x)
  in
  (* Top-down: parents are repaired before their children are examined. *)
  Node.iter_bfs visit t1;
  !fixed
