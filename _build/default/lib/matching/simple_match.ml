module Node = Treediff_tree.Node

(* T1 nodes in bottom-up order: height ascending, preorder within a height,
   so every node is visited after all its descendants and — under the
   acyclic-labels condition — after every node that could match below it. *)
let bottom_up t =
  let with_h = List.map (fun n -> (Node.height n, n)) (Node.preorder t) in
  List.stable_sort (fun (h1, _) (h2, _) -> compare h1 h2) with_h |> List.map snd

let candidates_by_label t =
  let h = Hashtbl.create 16 in
  List.iter
    (fun (n : Node.t) ->
      let prev = try Hashtbl.find h n.label with Not_found -> [] in
      Hashtbl.replace h n.label (n :: prev))
    (List.rev (Node.preorder t));
  h

let run ?init ctx =
  let m = match init with Some m -> Matching.copy m | None -> Matching.create () in
  let by_label = candidates_by_label (Criteria.t2_root ctx) in
  List.iter
    (fun (x : Node.t) ->
      if not (Matching.matched_old m x.id) then
        let candidates = try Hashtbl.find by_label x.label with Not_found -> [] in
        let rec scan = function
          | [] -> ()
          | (y : Node.t) :: rest ->
            if (not (Matching.matched_new m y.id)) && Criteria.equal_nodes ctx m x y
            then Matching.add m x.id y.id
            else scan rest
        in
        scan candidates)
    (bottom_up (Criteria.t1_root ctx));
  m
