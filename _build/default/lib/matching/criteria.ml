module Node = Treediff_tree.Node
module Stats = Treediff_util.Stats

type t = {
  leaf_f : float;
  internal_t : float;
  compare : string -> string -> float;
}

let all_or_nothing a b = if String.equal a b then 0.0 else 2.0

let make ?(leaf_f = 0.5) ?(internal_t = 0.6) ?(compare = all_or_nothing) () =
  if leaf_f < 0.0 || leaf_f > 1.0 then
    invalid_arg "Criteria.make: leaf_f must be in [0,1]";
  if internal_t < 0.5 || internal_t > 1.0 then
    invalid_arg "Criteria.make: internal_t must be in [1/2,1]";
  { leaf_f; internal_t; compare }

let default = make ()

type ctx = {
  crit : t;
  st : Stats.t;
  t1 : Node.t;
  t2 : Node.t;
  (* Preorder entry/exit numbering of T2 for O(1) containment tests. *)
  pre2 : (int, int) Hashtbl.t;
  last2 : (int, int) Hashtbl.t;
  leafcnt : (int, int) Hashtbl.t; (* both trees: node id -> |x| *)
}

let ctx ?(stats = Stats.create ()) crit ~t1 ~t2 =
  let pre2 = Hashtbl.create 64 and last2 = Hashtbl.create 64 in
  let counter = ref 0 in
  let rec number (n : Node.t) =
    let entry = !counter in
    incr counter;
    Hashtbl.replace pre2 n.id entry;
    List.iter number (Node.children n);
    Hashtbl.replace last2 n.id (!counter - 1)
  in
  number t2;
  let leafcnt = Hashtbl.create 64 in
  let rec fill (n : Node.t) =
    let c =
      if Node.is_leaf n then 1
      else List.fold_left (fun acc ch -> acc + fill ch) 0 (Node.children n)
    in
    Hashtbl.replace leafcnt n.id c;
    c
  in
  ignore (fill t1);
  ignore (fill t2);
  { crit; st = stats; t1; t2; pre2; last2; leafcnt }

let stats c = c.st

let criteria c = c.crit

let t1_root c = c.t1

let t2_root c = c.t2

let leaf_count c (n : Node.t) =
  match Hashtbl.find_opt c.leafcnt n.id with
  | Some k -> k
  | None -> Node.leaf_count n (* node outside the indexed pair; degrade gracefully *)

let equal_leaf c (x : Node.t) (y : Node.t) =
  String.equal x.label y.label
  &&
  (c.st.Stats.leaf_compares <- c.st.Stats.leaf_compares + 1;
   c.crit.compare x.value y.value <= c.crit.leaf_f)

(* z is contained in y's subtree (both in T2). *)
let contains2 c (y : Node.t) zid =
  match (Hashtbl.find_opt c.pre2 zid, Hashtbl.find_opt c.pre2 y.id,
         Hashtbl.find_opt c.last2 y.id)
  with
  | Some pz, Some py, Some ly -> pz >= py && pz <= ly
  | _ -> false

let common c m (x : Node.t) (y : Node.t) =
  let count = ref 0 in
  let rec walk (w : Node.t) =
    if Node.is_leaf w then begin
      c.st.Stats.partner_checks <- c.st.Stats.partner_checks + 1;
      match Matching.partner_of_old m w.id with
      | Some z when contains2 c y z -> incr count
      | Some _ | None -> ()
    end
    else List.iter walk (Node.children w)
  in
  walk x;
  !count

let equal_internal c m (x : Node.t) (y : Node.t) =
  String.equal x.label y.label
  &&
  let nx = leaf_count c x and ny = leaf_count c y in
  let cm = common c m x y in
  float_of_int cm /. float_of_int (max nx ny) > c.crit.internal_t

let equal_nodes c m x y =
  match (Node.is_leaf x, Node.is_leaf y) with
  | true, true -> equal_leaf c x y
  | false, false -> equal_internal c m x y
  | true, false | false, true -> false

let mc3_violating_leaves c ~old_side =
  let mine, theirs = if old_side then (c.t1, c.t2) else (c.t2, c.t1) in
  let other_leaves = Node.leaves theirs in
  List.filter
    (fun (x : Node.t) ->
      let close = ref 0 in
      List.iter
        (fun (y : Node.t) ->
          if String.equal x.label y.label && c.crit.compare x.value y.value <= 1.0 then
            incr close)
        other_leaves;
      !close >= 2)
    (Node.leaves mine)

let mc3_violations c =
  List.length (mc3_violating_leaves c ~old_side:true)
  + List.length (mc3_violating_leaves c ~old_side:false)
