type t = { fwd : (int, int) Hashtbl.t; bwd : (int, int) Hashtbl.t }

let create () = { fwd = Hashtbl.create 64; bwd = Hashtbl.create 64 }

let copy m = { fwd = Hashtbl.copy m.fwd; bwd = Hashtbl.copy m.bwd }

let add m x y =
  (match Hashtbl.find_opt m.fwd x with
  | Some y' when y' <> y ->
    invalid_arg (Printf.sprintf "Matching.add: T1 node %d already matched to %d" x y')
  | _ -> ());
  (match Hashtbl.find_opt m.bwd y with
  | Some x' when x' <> x ->
    invalid_arg (Printf.sprintf "Matching.add: T2 node %d already matched to %d" y x')
  | _ -> ());
  Hashtbl.replace m.fwd x y;
  Hashtbl.replace m.bwd y x

let remove m x y =
  match Hashtbl.find_opt m.fwd x with
  | Some y' when y' = y ->
    Hashtbl.remove m.fwd x;
    Hashtbl.remove m.bwd y
  | _ -> ()

let mem m x y = match Hashtbl.find_opt m.fwd x with Some y' -> y' = y | None -> false

let partner_of_old m x = Hashtbl.find_opt m.fwd x

let partner_of_new m y = Hashtbl.find_opt m.bwd y

let matched_old m x = Hashtbl.mem m.fwd x

let matched_new m y = Hashtbl.mem m.bwd y

let cardinal m = Hashtbl.length m.fwd

let pairs m =
  Hashtbl.fold (fun x y acc -> (x, y) :: acc) m.fwd []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let equal a b =
  cardinal a = cardinal b && List.for_all (fun (x, y) -> mem b x y) (pairs a)

let pp ppf m =
  Format.fprintf ppf "{";
  List.iteri
    (fun i (x, y) -> Format.fprintf ppf "%s(%d,%d)" (if i > 0 then ", " else "") x y)
    (pairs m);
  Format.fprintf ppf "}"
