(** Algorithm Match (§5.2, Fig. 10): the straightforward O(n²c + mn)
    bottom-up matcher.

    Visits T1 nodes bottom-up (leaves before internal nodes, lower internal
    nodes before higher ones) and pairs each unmatched node with the first
    unmatched same-label T2 node passing the §5.2 [equal] test.  Under
    Matching Criteria 1–3 and the acyclic-labels condition this computes the
    unique maximal matching (Theorem 5.2), so the scan order affects only
    which of several equivalent representations is found on data that
    violates MC3. *)

val run : ?init:Matching.t -> Criteria.ctx -> Matching.t
(** [run ctx] matches the context's tree pair.  [init], when given, seeds the
    matching (e.g. with key-based pairs from {!Keyed}); seeded pairs are
    never revisited.  The context's {!Treediff_util.Stats.t} accumulates the
    comparison counts. *)
