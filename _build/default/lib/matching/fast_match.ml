module Node = Treediff_tree.Node

let chain t l ~leaf =
  List.filter
    (fun (n : Node.t) -> String.equal n.label l && Node.is_leaf n = leaf)
    (Node.preorder t)

let match_label ctx m ?window l ~leaf =
  let t1 = Criteria.t1_root ctx and t2 = Criteria.t2_root ctx in
  let unmatched_of side nodes =
    let keep (n : Node.t) =
      match side with
      | `Old -> not (Matching.matched_old m n.id)
      | `New -> not (Matching.matched_new m n.id)
    in
    Array.of_list (List.filter keep nodes)
  in
  (* Only unmatched nodes take part; seeded pairs (keys) must stay intact. *)
  let s1 = unmatched_of `Old (chain t1 l ~leaf) in
  let s2 = unmatched_of `New (chain t2 l ~leaf) in
  let equal (x : Node.t) (y : Node.t) = Criteria.equal_nodes ctx m x y in
  (* 2a–2d: LCS pass over the chains. *)
  let lcs = Treediff_lcs.Myers.lcs ~equal s1 s2 in
  List.iter (fun (i, j) -> Matching.add m s1.(i).Node.id s2.(j).Node.id) lcs;
  (* 2e: pair the stragglers as in Algorithm Match — within the A(k) window
     around the node's own chain position when one is set. *)
  Array.iteri
    (fun i (x : Node.t) ->
      if not (Matching.matched_old m x.id) then begin
        let lo, hi =
          match window with
          | None -> (0, Array.length s2 - 1)
          | Some k -> (max 0 (i - k), min (Array.length s2 - 1) (i + k))
        in
        let rec scan j =
          if j <= hi then
            let y = s2.(j) in
            if (not (Matching.matched_new m y.id)) && equal x y then
              Matching.add m x.id y.id
            else scan (j + 1)
        in
        scan lo
      end)
    s1

let run ?init ?window ctx =
  let m = match init with Some m -> Matching.copy m | None -> Matching.create () in
  let t1 = Criteria.t1_root ctx and t2 = Criteria.t2_root ctx in
  List.iter
    (fun l -> match_label ctx m ?window l ~leaf:true)
    (Label_order.leaf_labels t1 t2);
  List.iter
    (fun l -> match_label ctx m ?window l ~leaf:false)
    (Label_order.internal_labels t1 t2);
  m
