lib/matching/matching.mli: Format
