lib/matching/keyed.ml: Hashtbl Matching Treediff_tree
