lib/matching/criteria.ml: Hashtbl List Matching String Treediff_tree Treediff_util
