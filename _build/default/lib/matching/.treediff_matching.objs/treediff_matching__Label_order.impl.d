lib/matching/label_order.ml: Array Hashtbl List Printf Treediff_tree
