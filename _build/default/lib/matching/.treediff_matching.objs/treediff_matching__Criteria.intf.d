lib/matching/criteria.mli: Matching Treediff_tree Treediff_util
