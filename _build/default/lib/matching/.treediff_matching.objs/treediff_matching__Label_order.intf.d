lib/matching/label_order.mli: Treediff_tree
