lib/matching/simple_match.mli: Criteria Matching
