lib/matching/keyed.mli: Matching Treediff_tree
