lib/matching/fast_match.mli: Criteria Matching Treediff_tree
