lib/matching/simple_match.ml: Criteria Hashtbl List Matching Treediff_tree
