lib/matching/postprocess.ml: Criteria Hashtbl List Matching Treediff_tree
