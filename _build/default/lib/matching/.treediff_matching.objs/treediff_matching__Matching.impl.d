lib/matching/matching.ml: Format Hashtbl List Printf
