lib/matching/fast_match.ml: Array Criteria Label_order List Matching String Treediff_lcs Treediff_tree
