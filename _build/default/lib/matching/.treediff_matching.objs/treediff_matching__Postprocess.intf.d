lib/matching/postprocess.mli: Criteria Matching
