(** The §8 post-processing pass that repairs sub-optimal matchings produced
    when Matching Criterion 3 fails to hold.

    Proceeding top-down, for each matched pair [(x, y)] and each child [c] of
    [x] whose partner [c'] is not a child of [y], we look for a child [c'']
    of [y] that [c] is allowed to match (Criterion 1 for leaves, Criterion 2
    for internal nodes).  An unmatched [c''] is taken directly; a matched one
    is handled by swapping the two pairs' partners (the crossed-duplicates
    case), provided the displaced node may take [c'].  This removes
    mismatches except those that propagated upward from lower levels (§8
    discusses the residue; Table 1 bounds it). *)

val run : Criteria.ctx -> Matching.t -> int
(** [run ctx m] repairs [m] in place and returns the number of pairs
    re-pointed. *)
