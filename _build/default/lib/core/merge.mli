(** Three-way change correlation — the paper's configuration-management
    motivation (§1, [HKG⁺94]): two parties evolve the same base
    independently; produce both deltas against the base and highlight
    conflicts.

    Because the edit-script generator preserves base node identifiers (the
    working tree copies them), delete/update/move operations in both scripts
    refer directly to base nodes; a {e conflict} is a base node touched by
    both sides in incompatible ways.  Touching agrees when both sides apply
    the identical operation (e.g. the same update), in which case it is not
    reported. *)

type touch = {
  base_id : int;
  label : string;
  value : string;    (** the base node's label/value, for display *)
  op : Treediff_edit.Op.t;
}

type conflict = { base_id : int; label : string; value : string;
                  ours : Treediff_edit.Op.t list; theirs : Treediff_edit.Op.t list }

type t = {
  ours : Diff.t;          (** delta base → ours *)
  theirs : Diff.t;        (** delta base → theirs *)
  conflicts : conflict list;
  ours_only : touch list;   (** base nodes touched by ours alone *)
  theirs_only : touch list;
}

val correlate :
  ?config:Config.t ->
  ?diff:(Treediff_tree.Node.t -> Treediff_tree.Node.t -> Diff.t) ->
  base:Treediff_tree.Node.t ->
  ours:Treediff_tree.Node.t ->
  theirs:Treediff_tree.Node.t ->
  unit ->
  t
(** Diff both versions against the base and classify every touched base
    node.  Inserts never conflict at the base (they create new nodes); they
    are visible through the [ours]/[theirs] diffs.  [diff] overrides how the
    base-to-version deltas are computed (e.g. keyed matching via
    {!Diff.diff_with_matching}); the default is [Diff.diff ?config]. *)

val pp_conflict : Format.formatter -> conflict -> unit
