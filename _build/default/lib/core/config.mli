(** Configuration of the end-to-end change-detection pipeline. *)

type algorithm =
  | Fast_match    (** Algorithm FastMatch (§5.3) — the default *)
  | Simple_match  (** Algorithm Match (§5.2) — the O(n²) reference *)

type t = {
  criteria : Treediff_matching.Criteria.t;
      (** matching parameters f, t and the leaf compare function *)
  algorithm : algorithm;
  postprocess : bool;
      (** run the §8 repair pass after matching (default true) *)
  cost : Treediff_edit.Cost.t;  (** §3.2 cost model, for script measurement *)
  scan_window : int option;
      (** the A(k) knob (§9): bound FastMatch's straggler scan to k chain
          positions; [None] (default) is the paper's full scan.  Smaller k is
          faster but may report far-moved content as delete+insert.  Ignored
          by [Simple_match]. *)
}

val default : t

val with_criteria : Treediff_matching.Criteria.t -> t

val with_compare : (string -> string -> float) -> t
(** Default config with a custom leaf-value distance used both for matching
    (criterion 1) and for update costs. *)
