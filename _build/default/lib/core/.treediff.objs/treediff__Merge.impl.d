lib/core/merge.ml: Diff Format Hashtbl List String Treediff_edit Treediff_tree
