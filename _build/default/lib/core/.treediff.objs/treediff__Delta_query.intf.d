lib/core/delta_query.mli: Delta
