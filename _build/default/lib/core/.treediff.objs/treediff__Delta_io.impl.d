lib/core/delta_io.ml: Buffer Delta List Printf String
