lib/core/diff.mli: Config Delta Treediff_edit Treediff_matching Treediff_tree Treediff_util
