lib/core/delta.mli: Format Treediff_edit Treediff_matching Treediff_tree
