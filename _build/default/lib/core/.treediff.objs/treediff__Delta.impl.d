lib/core/delta.ml: Format Hashtbl List Printf String Treediff_edit Treediff_matching Treediff_tree
