lib/core/config.ml: Treediff_edit Treediff_matching
