lib/core/delta_io.mli: Delta
