lib/core/config.mli: Treediff_edit Treediff_matching
