lib/core/merge.mli: Config Diff Format Treediff_edit Treediff_tree
