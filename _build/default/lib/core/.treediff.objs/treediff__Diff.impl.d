lib/core/diff.ml: Config Delta Edit_gen List Option Printf String Treediff_edit Treediff_matching Treediff_tree Treediff_util
