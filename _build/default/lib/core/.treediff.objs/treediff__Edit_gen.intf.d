lib/core/edit_gen.mli: Treediff_edit Treediff_matching Treediff_tree
