lib/core/edit_gen.ml: Array Hashtbl List Printf String Treediff_edit Treediff_lcs Treediff_matching Treediff_tree
