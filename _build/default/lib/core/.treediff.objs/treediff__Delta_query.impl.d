lib/core/delta_query.ml: Buffer Delta List Printf String
