type kind = Identical | Updated | Inserted | Deleted | Marker | Moved | Changed

let kind_matches k (d : Delta.t) =
  match k with
  | Identical -> d.Delta.base = Delta.Identical && d.Delta.moved = None
  | Updated -> (match d.Delta.base with Delta.Updated _ -> true | _ -> false)
  | Inserted -> d.Delta.base = Delta.Inserted
  | Deleted -> d.Delta.base = Delta.Deleted
  | Marker -> d.Delta.base = Delta.Marker
  | Moved -> d.Delta.moved <> None && d.Delta.base <> Delta.Marker
  | Changed -> not (d.Delta.base = Delta.Identical && d.Delta.moved = None)

type path = { node : Delta.t; ancestors : Delta.t list }

let path_string p =
  let chain = List.rev (p.node :: p.ancestors) in
  let rec walk acc parent = function
    | [] -> String.concat "/" (List.rev acc)
    | (d : Delta.t) :: rest ->
      let step =
        match parent with
        | None -> d.Delta.label
        | Some (par : Delta.t) ->
          let idx =
            let rec find i = function
              | [] -> -1
              | c :: tl -> if c == d then i else find (i + 1) tl
            in
            find 0 par.Delta.children
          in
          Printf.sprintf "%s[%d]" d.Delta.label idx
      in
      walk (step :: acc) (Some d) rest
  in
  walk [] None chain

let fold f acc root =
  let rec walk acc ancestors (d : Delta.t) =
    let acc = f acc { node = d; ancestors } in
    List.fold_left (fun acc c -> walk acc (d :: ancestors) c) acc d.Delta.children
  in
  walk acc [] root

let select ?label ?kind root =
  let keep (d : Delta.t) =
    (match label with Some l -> String.equal l d.Delta.label | None -> true)
    && match kind with Some k -> kind_matches k d | None -> true
  in
  List.rev (fold (fun acc p -> if keep p.node then p :: acc else acc) [] root)

let changed root = select ~kind:Changed root

let count ?label ?kind root = List.length (select ?label ?kind root)

let exists ?label ?kind root = select ?label ?kind root <> []

(* ------------------------------------------------------ selector syntax *)

type step = { label_pat : string option; kind_pat : kind option }

type seg = Child of step | Descendant of step

let parse_kind = function
  | "ins" -> Ok Inserted
  | "del" -> Ok Deleted
  | "upd" -> Ok Updated
  | "mov" -> Ok Moved
  | "mrk" -> Ok Marker
  | "idn" -> Ok Identical
  | "changed" -> Ok Changed
  | other -> Error (Printf.sprintf "unknown kind %S (ins|del|upd|mov|mrk|idn|changed)" other)

let parse_step s =
  if s = "" then Error "empty step"
  else
    let label_part, kind_part =
      match String.index_opt s '[' with
      | None -> (s, None)
      | Some i ->
        if String.length s = 0 || s.[String.length s - 1] <> ']' then (s, Some (Error "missing ']'"))
        else
          ( String.sub s 0 i,
            Some (parse_kind (String.sub s (i + 1) (String.length s - i - 2))) )
    in
    let label_pat = if label_part = "*" then None else Some label_part in
    if label_part = "" then Error "empty label (use * for any)"
    else
      match kind_part with
      | None -> Ok { label_pat; kind_pat = None }
      | Some (Ok k) -> Ok { label_pat; kind_pat = Some k }
      | Some (Error e) -> Error e

(* Split "A//B/C" into segments with their separators.  The first segment is
   always a Descendant (implicit leading //). *)
let parse_selector s =
  let n = String.length s in
  if String.trim s = "" then Error "empty selector"
  else begin
    let segs = ref [] in
    let buf = Buffer.create 16 in
    let error = ref None in
    let pending = ref (fun st -> Descendant st) in
    let flush () =
      match parse_step (Buffer.contents buf) with
      | Ok st ->
        segs := !pending st :: !segs;
        Buffer.clear buf
      | Error e -> error := Some e
    in
    let i = ref 0 in
    while !i < n && !error = None do
      if s.[!i] = '/' then begin
        (* A leading axis ("//S" or "/S") has no step before it; both mean
           descendant-from-anywhere for the first step.  Elsewhere an empty
           step is a syntax error. *)
        if Buffer.length buf = 0 then begin
          if !segs <> [] then error := Some "empty step"
        end
        else flush ();
        if !i + 1 < n && s.[!i + 1] = '/' then begin
          pending := (fun st -> Descendant st);
          i := !i + 2
        end
        else begin
          pending := (fun st -> if !segs = [] then Descendant st else Child st);
          incr i
        end
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    (match !error with None -> flush () | Some _ -> ());
    match !error with
    | Some e -> Error e
    | None -> Ok (List.rev !segs)
  end

let step_matches st (d : Delta.t) =
  (match st.label_pat with Some l -> String.equal l d.Delta.label | None -> true)
  && match st.kind_pat with Some k -> kind_matches k d | None -> true

let query selector root =
  match parse_selector selector with
  | Error e -> Error e
  | Ok segs ->
    (* For each node, does the remaining selector match with this node bound
       to the first step?  Standard path evaluation with backtracking. *)
    let results = ref [] in
    let rec eval_rest (d : Delta.t) ancestors segs =
      match segs with
      | [] ->
        results := { node = d; ancestors } :: !results
      | Child st :: rest ->
        List.iter
          (fun c -> if step_matches st c then eval_rest c (d :: ancestors) rest)
          d.Delta.children
      | Descendant st :: rest ->
        let rec dig anc (c : Delta.t) =
          if step_matches st c then eval_rest c anc rest;
          List.iter (dig (c :: anc)) c.Delta.children
        in
        List.iter (dig (d :: ancestors)) d.Delta.children
    in
    (match segs with
    | [] -> ()
    | first :: rest ->
      let st = match first with Child st | Descendant st -> st in
      (* implicit leading //: try every node as the first binding *)
      let rec dig anc (d : Delta.t) =
        if step_matches st d then eval_rest d anc rest;
        List.iter (dig (d :: anc)) d.Delta.children
      in
      dig [] root);
    (* preserve preorder: results were accumulated along a preorder walk but
       pushed in front *)
    Ok (List.rev !results)

let query_exn selector root =
  match query selector root with
  | Ok paths -> paths
  | Error e -> invalid_arg ("Delta_query.query: " ^ e)
