module Node = Treediff_tree.Node
module Tree = Treediff_tree.Tree
module Op = Treediff_edit.Op
module Matching = Treediff_matching.Matching

type base = Identical | Updated of string | Inserted | Deleted | Marker

type t = {
  label : string;
  value : string;
  base : base;
  moved : int option;
  children : t list;
}

let build ~t1 ~t2 ~total ~script =
  let t1_index = Tree.index_by_id t1 in
  let in_t1 id = Hashtbl.mem t1_index id in
  (* Marker numbers in script order; a node moves at most once per script. *)
  let markers = Hashtbl.create 16 in
  List.iter
    (fun op ->
      match op with
      | Op.Move { id; _ } ->
        if not (Hashtbl.mem markers id) then
          Hashtbl.replace markers id (Hashtbl.length markers + 1)
      | Op.Insert _ | Op.Delete _ | Op.Update _ -> ())
    script;
  (* Ghost subtree for a deleted T1 node: unmatched descendants stay as
     [Deleted]; matched descendants were necessarily moved out, so they leave
     a [Marker] behind. *)
  let rec deleted_ghost (u : Node.t) =
    {
      label = u.label;
      value = u.value;
      base = Deleted;
      moved = None;
      children =
        List.map
          (fun (c : Node.t) ->
            if Matching.matched_old total c.id then marker_ghost c else deleted_ghost c)
          (Node.children u);
    }
  and marker_ghost (c : Node.t) =
    { label = c.label; value = c.value; base = Marker;
      moved = Hashtbl.find_opt markers c.id; children = [] }
  in
  (* Ghosts anchored under matched T1 parents, keyed by the partner's T2 id. *)
  let anchored : (int, (int * t) list ref) Hashtbl.t = Hashtbl.create 16 in
  let root_ghosts = ref [] in
  let anchor (p : Node.t option) old_index ghost =
    let target =
      match p with
      | Some p -> Matching.partner_of_old total p.Node.id
      | None -> None
    in
    match target with
    | Some t2id ->
      let slot =
        match Hashtbl.find_opt anchored t2id with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace anchored t2id r;
          r
      in
      slot := (old_index, ghost) :: !slot
    | None -> root_ghosts := (old_index, ghost) :: !root_ghosts
  in
  let old_index (u : Node.t) = match u.Node.parent with Some _ -> Node.child_index u | None -> 0 in
  Node.iter_preorder
    (fun (u : Node.t) ->
      let parent_deleted =
        match u.Node.parent with
        | Some p -> not (Matching.matched_old total p.Node.id)
        | None -> false
      in
      (* Only ghost roots are anchored; nested ghosts are built recursively. *)
      if not parent_deleted then
        if not (Matching.matched_old total u.id) then
          anchor u.Node.parent (old_index u) (deleted_ghost u)
        else if Hashtbl.mem markers u.id then
          anchor u.Node.parent (old_index u) (marker_ghost u))
    t1;
  let insert_ghosts t2id children =
    match Hashtbl.find_opt anchored t2id with
    | None -> children
    | Some slot ->
      let ghosts = List.sort (fun (i, _) (j, _) -> compare i j) !slot in
      List.fold_left
        (fun acc (idx, ghost) ->
          let n = List.length acc in
          let idx = min idx n in
          let rec ins i = function
            | rest when i = 0 -> ghost :: rest
            | [] -> [ ghost ]
            | x :: rest -> x :: ins (i - 1) rest
          in
          ins idx acc)
        children ghosts
  in
  let rec build_new (y : Node.t) =
    let wid = Matching.partner_of_new total y.id in
    let base, moved =
      match wid with
      | Some wid when in_t1 wid ->
        let old = Hashtbl.find t1_index wid in
        let base =
          if String.equal old.Node.value y.value then Identical
          else Updated old.Node.value
        in
        (base, Hashtbl.find_opt markers wid)
      | Some _ -> (Inserted, None) (* fresh id: node was inserted *)
      | None -> (Inserted, None)   (* unmatched new node (pre-script delta) *)
    in
    let children = insert_ghosts y.id (List.map build_new (Node.children y)) in
    { label = y.label; value = y.value; base; moved; children }
  in
  let root = build_new t2 in
  (* Ghosts whose old parent has no counterpart (e.g. a replaced root) hang
     off the delta root, oldest position first. *)
  match !root_ghosts with
  | [] -> root
  | gs ->
    let gs = List.map snd (List.sort (fun (i, _) (j, _) -> compare i j) gs) in
    { root with children = gs @ root.children }

let rec strip d =
  match d.base with
  | Deleted | Marker -> None
  | Identical | Updated _ | Inserted ->
    Some { d with children = List.filter_map strip d.children }

let to_new_tree gen d =
  let rec build (d : t) =
    match d.base with
    | Deleted | Marker -> None
    | Identical | Updated _ | Inserted ->
      Some (Tree.node gen d.label ~value:d.value (List.filter_map build d.children))
  in
  match build d with
  | Some t -> t
  | None -> invalid_arg "Delta.to_new_tree: the root is a ghost"

let counts d =
  let ins = ref 0 and del = ref 0 and upd = ref 0 and mov = ref 0 in
  let rec walk ~in_ghost d =
    (match d.base with
    | Inserted -> incr ins
    | Deleted -> if not in_ghost then incr del
    | Updated _ -> incr upd
    | Identical | Marker -> ());
    (match (d.base, d.moved) with
    | (Identical | Updated _), Some _ -> incr mov
    | _ -> ());
    let in_ghost = in_ghost || d.base = Deleted in
    List.iter (walk ~in_ghost) d.children
  in
  walk ~in_ghost:false d;
  (!ins, !del, !upd, !mov)

let marker_of d = match d.base with Marker -> d.moved | _ -> None

let rec pp ppf d =
  let annot =
    match (d.base, d.moved) with
    | Identical, None -> ""
    | Identical, Some k -> Printf.sprintf " [mov->%d]" k
    | Updated old, None -> Printf.sprintf " [upd from %S]" old
    | Updated old, Some k -> Printf.sprintf " [upd from %S, mov->%d]" old k
    | Inserted, _ -> " [ins]"
    | Deleted, _ -> " [del]"
    | Marker, Some k -> Printf.sprintf " [mrk %d]" k
    | Marker, None -> " [mrk]"
  in
  if d.children = [] then Format.fprintf ppf "@[<v>(%s %S%s)@]" d.label d.value annot
  else begin
    Format.fprintf ppf "@[<v 2>(%s%s%s" d.label
      (if d.value = "" then "" else Printf.sprintf " %S" d.value)
      annot;
    List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) d.children;
    Format.fprintf ppf ")@]"
  end

let to_string d = Format.asprintf "%a" pp d
