(** Querying and browsing delta trees — the §9 direction of building query
    languages over hierarchical deltas [WU95].

    Two layers:
    - a combinator API ({!select}, {!fold}, {!count}) over annotated nodes
      with their ancestry, and
    - a compact selector syntax ({!query}):

    {v
    selector  ::=  step ( sep step )*
    sep       ::=  "/"  (child)   |  "//"  (descendant)
    step      ::=  label-or-*  [ "[" kind "]" ]
    kind      ::=  ins | del | upd | mov | mrk | idn | changed
    v}

    The first step matches any node in the tree (an implicit leading [//]).
    Examples: ["Section//Sentence[ins]"] — inserted sentences anywhere under
    a section; ["*[changed]"] — every changed node; ["Document/Section[mov]"]
    — moved top-level sections. *)

type kind =
  | Identical
  | Updated
  | Inserted
  | Deleted
  | Marker
  | Moved      (** any node carrying a move flag, whatever its base *)
  | Changed    (** anything other than an unmoved [Identical] *)

val kind_matches : kind -> Delta.t -> bool

(** A matched node together with its ancestors (nearest first) — enough to
    render a location or walk back up. *)
type path = { node : Delta.t; ancestors : Delta.t list }

val path_string : path -> string
(** ["Document/Section[1]/Paragraph[0]"]-style location (indexes are
    positions within the delta tree, ghosts included). *)

val select : ?label:string -> ?kind:kind -> Delta.t -> path list
(** All nodes matching the optional label and kind filters, preorder. *)

val changed : Delta.t -> path list
(** [select ~kind:Changed], the browsing entry point. *)

val count : ?label:string -> ?kind:kind -> Delta.t -> int

val exists : ?label:string -> ?kind:kind -> Delta.t -> bool

val fold : ('a -> path -> 'a) -> 'a -> Delta.t -> 'a
(** Fold over every node (no filter), preorder, with ancestry. *)

val query : string -> Delta.t -> (path list, string) result
(** Evaluate a selector; [Error msg] on syntax errors. *)

val query_exn : string -> Delta.t -> path list
(** @raise Invalid_argument on selector syntax errors. *)
