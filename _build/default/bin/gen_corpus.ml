(* Workload generator CLI: emit a deterministic pair (or chain) of LaTeX
   document versions, for exercising ladiff by hand.

     gen_corpus --seed 42 --size medium --edits 15 -o /tmp/doc
     ladiff /tmp/doc.v0.tex /tmp/doc.v1.tex -m text *)

open Cmdliner

let run seed size edits versions prefix =
  let profile =
    match size with
    | "small" -> Treediff_workload.Docgen.small
    | "medium" -> Treediff_workload.Docgen.medium
    | "large" -> Treediff_workload.Docgen.large
    | s -> failwith (Printf.sprintf "unknown size %S (small|medium|large)" s)
  in
  let set =
    Treediff_workload.Corpus.make ~name:prefix ~seed ~profile ~versions
      ~edits_per_version:edits
  in
  List.iteri
    (fun i doc ->
      let path = Printf.sprintf "%s.v%d.tex" prefix i in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Treediff_doc.Latex_parser.print doc));
      Printf.printf "wrote %s (%d sentences)\n" path
        (Treediff_doc.Doc_tree.sentence_count doc))
    set.Treediff_workload.Corpus.versions

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let size =
  Arg.(value & opt string "medium" & info [ "size" ] ~docv:"SIZE"
         ~doc:"Document profile: $(b,small), $(b,medium) or $(b,large).")

let edits =
  Arg.(value & opt int 15 & info [ "edits" ] ~docv:"N"
         ~doc:"Revision actions between consecutive versions.")

let versions =
  Arg.(value & opt int 2 & info [ "versions" ] ~docv:"N" ~doc:"Number of versions.")

let prefix =
  Arg.(value & opt string "corpus" & info [ "o"; "output" ] ~docv:"PREFIX"
         ~doc:"Output path prefix; files are $(docv).v0.tex, $(docv).v1.tex, …")

let cmd =
  let doc = "generate deterministic synthetic document-version corpora" in
  Cmd.v (Cmd.info "gen_corpus" ~version:"1.0.0" ~doc)
    Term.(const run $ seed $ size $ edits $ versions $ prefix)

let () = exit (Cmd.eval cmd)
