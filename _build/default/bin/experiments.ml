(* Experiment runner: the cmdliner face of the benchmark harness, for users
   who want one experiment at a time with proper --help.  `bench/main.exe`
   runs the same drivers plus the Bechamel timing benches. *)

open Cmdliner

module E = Treediff_experiments

let all = [ "fig13a"; "fig13b"; "table1"; "sample"; "scaling"; "quality"; "optimality"; "ablation" ]

let run names =
  let names = if names = [] then all else names in
  List.iter
    (fun name ->
      match name with
      | "fig13a" -> ignore (E.Fig13a.run ())
      | "fig13b" -> ignore (E.Fig13b.run ())
      | "table1" -> ignore (E.Table1.run ())
      | "sample" -> ignore (E.Sample_run.run ())
      | "scaling" -> ignore (E.Scaling.run ())
      | "quality" -> ignore (E.Quality.run ())
      | "optimality" -> ignore (E.Optimality.run ())
      | "ablation" -> ignore (E.Ablation.run ())
      | other -> failwith (Printf.sprintf "unknown experiment %S (choose from: %s)" other (String.concat ", " all)))
    names

let names =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiments to run (default: all).")

let cmd =
  let doc = "regenerate the paper's evaluation tables and figures" in
  Cmd.v (Cmd.info "experiments" ~version:"1.0.0" ~doc) Term.(const run $ names)

let () = exit (Cmd.eval cmd)
