(* Quickstart: build two small trees, diff them, inspect every artifact.

   Run with:  dune exec examples/quickstart.exe

   The trees are the running example of the paper's Figure 1: two versions
   of a three-paragraph document.  The pipeline finds the matching, derives
   the minimum-cost conforming edit script, and builds the annotated delta
   tree. *)

module Codec = Treediff_tree.Codec
module Tree = Treediff_tree.Tree

let () =
  (* One id generator for both trees: node ids must be unique across the
     comparison (they are NOT stable identities across versions — recovering
     that correspondence is the matcher's job). *)
  let gen = Tree.gen () in
  let t1 =
    Codec.parse gen
      {|(D (P (S "the old version of this tree")
            (S "shared sentence one"))
         (P (S "shared sentence two"))
         (P (S "shared sentence three")
            (S "to be deleted")))|}
  in
  let t2 =
    Codec.parse gen
      {|(D (P (S "shared sentence two"))
         (P (S "the new version of this tree")
            (S "shared sentence one"))
         (P (S "shared sentence three")))|}
  in

  (* Configure the matcher: a word-overlap distance for leaf values (so
     the reworded opening sentence is matched as an UPDATE instead of a
     delete+insert) and permissive thresholds for this tiny document.
     [Treediff.Config.default] would use exact-value matching. *)
  let criteria =
    Treediff_matching.Criteria.make ~leaf_f:0.4 ~internal_t:0.5
      ~compare:(fun a b ->
        let words s = String.split_on_char ' ' s in
        let common = List.length (List.filter (fun w -> List.mem w (words b)) (words a)) in
        let n = max (List.length (words a)) (List.length (words b)) in
        float_of_int (List.length (words a) + List.length (words b) - (2 * common))
        /. float_of_int n)
      ()
  in
  let result = Treediff.Diff.diff ~config:(Treediff.Config.with_criteria criteria) t1 t2 in

  print_endline "== edit script (transforms T1 into T2) ==";
  List.iter
    (fun op -> print_endline ("  " ^ Treediff_edit.Op.to_string op))
    result.Treediff.Diff.script;

  let m = result.Treediff.Diff.measure in
  Printf.printf "\ncost %.2f; %d inserts, %d deletes, %d updates, %d moves\n"
    m.Treediff_edit.Script.cost m.Treediff_edit.Script.inserts
    m.Treediff_edit.Script.deletes m.Treediff_edit.Script.updates
    m.Treediff_edit.Script.moves;

  (* The delta tree: the new version annotated with what happened where. *)
  print_endline "\n== delta tree ==";
  print_endline (Treediff.Delta.to_string result.Treediff.Diff.delta);

  (* Replay the script: the transformed tree is isomorphic to T2. *)
  let transformed = Treediff.Diff.apply result t1 in
  Printf.printf "\nscript replays correctly: %b\n"
    (Treediff_tree.Iso.equal transformed t2);
  match Treediff.Diff.check result ~t1 ~t2 with
  | Ok () -> print_endline "conformity check passed"
  | Error e -> failwith e
