(* Diffing program ASTs — the non-document face of hierarchical change
   detection (tree diffing of code is where this paper's algorithm ended up
   most used: GumTree and friends are Chawathe-style differs).

   Run with:  dune exec examples/ast_diff.exe

   A tiny expression language is parsed into labeled trees (Fun > Stmt >
   expression nodes), two versions of a small program are diffed, and the
   script shows refactorings as moves/updates rather than blind rewrites. *)

module Tree = Treediff_tree.Tree
module Node = Treediff_tree.Node

(* --- a 50-line expression-language front end ------------------------- *)

(* program  ::=  fun NAME { stmt* }
   stmt     ::=  NAME = expr ;
   expr     ::=  term (('+'|'*') term)*
   term     ::=  NAME | NUMBER | '(' expr ')'                             *)

exception Syntax of string

let tokenize src =
  let toks = ref [] in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | ' ' | '\n' | '\t' -> ()
    | '{' | '}' | '(' | ')' | ';' | '=' | '+' | '*' ->
      toks := String.make 1 src.[!i] :: !toks
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' ->
      let start = !i in
      while
        !i + 1 < n
        && match src.[!i + 1] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true | _ -> false
      do
        incr i
      done;
      toks := String.sub src start (!i - start + 1) :: !toks
    | c -> raise (Syntax (Printf.sprintf "unexpected %C" c)));
    incr i
  done;
  List.rev !toks

let parse gen src =
  let toks = ref (tokenize src) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let next () =
    match !toks with
    | [] -> raise (Syntax "unexpected end of input")
    | t :: rest ->
      toks := rest;
      t
  in
  let expect t = if next () <> t then raise (Syntax ("expected " ^ t)) in
  let is_ident t = match t.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false in
  let rec expr () =
    let lhs = ref (term ()) in
    let rec ops () =
      match peek () with
      | Some (("+" | "*") as op) ->
        ignore (next ());
        let rhs = term () in
        lhs := Tree.node gen (if op = "+" then "Add" else "Mul") [ !lhs; rhs ];
        ops ()
      | _ -> ()
    in
    ops ();
    !lhs
  and term () =
    match next () with
    | "(" ->
      let e = expr () in
      expect ")";
      e
    | t when is_ident t -> Tree.leaf gen "Var" t
    | t -> Tree.leaf gen "Num" t
  in
  let stmt () =
    let name = next () in
    expect "=";
    let e = expr () in
    expect ";";
    Tree.node gen "Assign" ~value:name [ e ]
  in
  expect "fun";
  let fname = next () in
  expect "{";
  let stmts = ref [] in
  while peek () <> Some "}" do
    stmts := stmt () :: !stmts
  done;
  expect "}";
  Tree.node gen "Fun" ~value:fname (List.rev !stmts)

(* --- two versions of a function --------------------------------------- *)

let v1 = {| fun damping {
  scale = mass * gravity;
  base = position + velocity * dt;
  result = base * scale;
  debug = base;
} |}

let v2 = {| fun damping {
  base = position + velocity * dt;
  scale = mass * gravity2;
  result = base * scale + offset;
} |}

let () =
  let gen = Tree.gen () in
  let t1 = parse gen v1 and t2 = parse gen v2 in

  (* ASTs are keyless data with duplicate-heavy leaves (variables recur).
     Character-level distance makes a rename (gravity -> gravity2) an UPDATE
     while keeping unrelated identifiers apart; the permissive structural
     threshold tolerates a statement gaining an operand. *)
  let criteria =
    Treediff_matching.Criteria.make ~leaf_f:0.4 ~internal_t:0.5
      ~compare:Treediff_textdiff.Levenshtein.normalized ()
  in
  let result =
    Treediff.Diff.diff ~config:(Treediff.Config.with_criteria criteria) t1 t2
  in

  print_endline "== old AST ==";
  print_endline (Treediff_tree.Codec.to_string t1);
  print_endline "\n== new AST ==";
  print_endline (Treediff_tree.Codec.to_string t2);

  print_endline "\n== edit script ==";
  List.iter
    (fun op -> print_endline ("  " ^ Treediff_edit.Op.to_string op))
    result.Treediff.Diff.script;

  let m = result.Treediff.Diff.measure in
  Printf.printf
    "\nthe reordered statements are MOVes (%d), the renamed variable an UPDate (%d);\n\
     a flat differ would have rewritten every one of those lines\n"
    m.Treediff_edit.Script.moves m.Treediff_edit.Script.updates;

  match Treediff.Diff.check result ~t1 ~t2 with
  | Ok () -> print_endline "[ok] script verified"
  | Error e -> failwith e
