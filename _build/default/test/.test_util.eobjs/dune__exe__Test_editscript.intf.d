test/test_editscript.mli:
