test/test_edit.mli:
