test/test_diff.mli:
