test/test_doc.mli:
