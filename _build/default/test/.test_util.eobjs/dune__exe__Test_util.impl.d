test/test_util.ml: Alcotest Array List QCheck2 QCheck_alcotest String Treediff_util
