test/test_tree.mli:
