test/test_query.ml: Alcotest List String Treediff Treediff_tree
