test/test_cli.ml: Alcotest Filename Fun Printf String Sys Treediff_tree
