test/test_zs.mli:
