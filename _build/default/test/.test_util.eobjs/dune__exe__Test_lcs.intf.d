test/test_lcs.mli:
