test/test_textdiff.mli:
