test/test_lcs.ml: Alcotest Array Int List QCheck2 QCheck_alcotest String Treediff_lcs
