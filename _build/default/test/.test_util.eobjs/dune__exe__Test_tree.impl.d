test/test_tree.ml: Alcotest Hashtbl List Printf QCheck2 QCheck_alcotest Treediff_tree Treediff_util
