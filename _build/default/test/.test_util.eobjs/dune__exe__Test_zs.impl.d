test/test_zs.ml: Alcotest Float Hashtbl List Option Printf QCheck2 QCheck_alcotest String Treediff_matching Treediff_tree Treediff_util Treediff_zs
