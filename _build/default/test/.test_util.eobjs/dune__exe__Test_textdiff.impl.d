test/test_textdiff.ml: Alcotest Array Float List QCheck2 QCheck_alcotest String Treediff_textdiff Treediff_util
