test/test_doc.ml: Alcotest List QCheck2 QCheck_alcotest String Treediff Treediff_doc Treediff_tree Treediff_util Treediff_workload
