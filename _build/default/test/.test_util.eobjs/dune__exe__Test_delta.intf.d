test/test_delta.mli:
