test/test_support.ml: Treediff_experiments
