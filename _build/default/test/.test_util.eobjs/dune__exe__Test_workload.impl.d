test/test_workload.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest String Treediff_doc Treediff_textdiff Treediff_tree Treediff_util Treediff_workload
