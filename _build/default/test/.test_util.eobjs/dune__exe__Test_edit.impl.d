test/test_edit.ml: Alcotest List QCheck2 QCheck_alcotest String Treediff Treediff_edit Treediff_tree Treediff_util Treediff_workload
