(* Tests for Treediff_textdiff: the word-LCS sentence compare (§7) and the
   flat line differ (§2 baseline). *)

module W = Treediff_textdiff.Word_compare
module L = Treediff_textdiff.Line_diff
module Lev = Treediff_textdiff.Levenshtein
module P = Treediff_util.Prng

(* ---------------------------------------------------------- word compare *)

let test_words () =
  Alcotest.(check (array string)) "tokenize"
    [| "the"; "cat"; "the"; "hat" |]
    (W.words "The cat, the hat!");
  Alcotest.(check (array string)) "punctuation stripped"
    [| "don't"; "re-do"; "x" |]
    (W.words "(don't) re-do: x.");
  Alcotest.(check (array string)) "empty" [||] (W.words "   ");
  Alcotest.(check (array string)) "numbers kept" [| "42"; "items" |] (W.words "42 items");
  (* multibyte words stay whole (UTF-8 bytes are word characters) *)
  Alcotest.(check int) "utf-8 words" 2 (Array.length (W.words "caf\xc3\xa9 d\xc3\xa9j\xc3\xa0"));
  Alcotest.(check (float 1e-9)) "utf-8 identical" 0.0
    (W.distance "caf\xc3\xa9 au lait" "caf\xc3\xa9 au lait")

let test_distance_identity () =
  Alcotest.(check (float 1e-9)) "identical" 0.0 (W.distance "a b c" "a b c");
  Alcotest.(check (float 1e-9)) "case-insensitive" 0.0 (W.distance "A B" "a b");
  Alcotest.(check (float 1e-9)) "both empty" 0.0 (W.distance "" "")

let test_distance_range () =
  Alcotest.(check (float 1e-9)) "disjoint same length" 2.0 (W.distance "a b" "x y");
  (* one word in common out of 2 vs 2: (2+2-2)/2 = 1 *)
  Alcotest.(check (float 1e-9)) "half common" 1.0 (W.distance "a b" "a y");
  (* empty vs non-empty: (0+2-0)/2 = 1 *)
  Alcotest.(check (float 1e-9)) "empty vs words" 1.0 (W.distance "" "x y")

let test_paper_semantics () =
  (* "LCS of the words … count the words not in the LCS": order matters. *)
  Alcotest.(check bool) "reorder is not free" true (W.distance "a b c" "c b a" > 0.0);
  Alcotest.(check bool) "small edit below threshold" true
    (W.similar "the quick brown fox jumps" "the quick brown fox leaps");
  Alcotest.(check bool) "rewrite above threshold" false
    (W.similar "the quick brown fox" "an entirely different phrase")

let distance_properties =
  QCheck2.Test.make ~name:"distance: symmetric, in [0,2], zero iff equal words"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_bound 8) (string_size ~gen:(char_range 'a' 'e') (int_range 1 3)))
        (list_size (int_bound 8) (string_size ~gen:(char_range 'a' 'e') (int_range 1 3))))
    (fun (ws1, ws2) ->
      let s1 = String.concat " " ws1 and s2 = String.concat " " ws2 in
      let d = W.distance s1 s2 in
      d >= 0.0 && d <= 2.0
      && Float.abs (d -. W.distance s2 s1) < 1e-9
      && (d > 0.0 || W.words s1 = W.words s2))

(* ------------------------------------------------------------ levenshtein *)

let test_levenshtein_known () =
  Alcotest.(check int) "identical" 0 (Lev.distance "kitten" "kitten");
  Alcotest.(check int) "classic" 3 (Lev.distance "kitten" "sitting");
  Alcotest.(check int) "empty left" 3 (Lev.distance "" "abc");
  Alcotest.(check int) "empty right" 3 (Lev.distance "abc" "");
  Alcotest.(check int) "single sub" 1 (Lev.distance "gravity" "grovity");
  Alcotest.(check int) "append" 1 (Lev.distance "gravity" "gravity2")

let test_levenshtein_normalized () =
  Alcotest.(check (float 1e-9)) "equal is 0" 0.0 (Lev.normalized "x" "x");
  Alcotest.(check (float 1e-9)) "both empty" 0.0 (Lev.normalized "" "");
  Alcotest.(check (float 1e-9)) "disjoint same length is 2" 2.0 (Lev.normalized "ab" "cd");
  Alcotest.(check bool) "rename is similar" true (Lev.similar "gravity" "gravity2");
  Alcotest.(check bool) "unrelated is not" false (Lev.similar "base" "offset")

(* Metric-ish sanity: symmetry, identity, triangle inequality. *)
let levenshtein_metric_prop =
  QCheck2.Test.make ~name:"levenshtein is a metric" ~count:300
    QCheck2.Gen.(
      triple
        (string_size ~gen:(char_range 'a' 'd') (int_bound 8))
        (string_size ~gen:(char_range 'a' 'd') (int_bound 8))
        (string_size ~gen:(char_range 'a' 'd') (int_bound 8)))
    (fun (a, b, c) ->
      let d = Lev.distance in
      d a b = d b a
      && (d a b = 0) = (a = b)
      && d a c <= d a b + d b c
      && d a b <= max (String.length a) (String.length b))

(* ------------------------------------------------------------- line diff *)

let test_lines () =
  Alcotest.(check (array string)) "split" [| "a"; "b" |] (L.lines "a\nb\n");
  Alcotest.(check (array string)) "no trailing newline" [| "a"; "b" |] (L.lines "a\nb");
  Alcotest.(check (array string)) "keeps interior empties" [| "a"; ""; "b" |]
    (L.lines "a\n\nb")

let test_line_diff_basic () =
  let hunks = L.diff "a\nb\nc\n" "a\nx\nc\n" in
  (match hunks with
  | [ L.Equal [| "a" |]; L.Replace ([| "b" |], [| "x" |]); L.Equal [| "c" |] ] -> ()
  | _ -> Alcotest.fail "unexpected hunk structure");
  let d, i = L.stats hunks in
  Alcotest.(check (pair int int)) "stats" (1, 1) (d, i)

let test_line_diff_move_is_del_plus_ins () =
  (* the §2 claim: flat diff reports a moved block as delete + insert *)
  let old_text = "p1-line1\np1-line2\nmid\np2-line1\n" in
  let new_text = "mid\np2-line1\np1-line1\np1-line2\n" in
  let d, i = L.stats (L.diff old_text new_text) in
  Alcotest.(check bool) "deletes reported" true (d >= 2);
  Alcotest.(check bool) "inserts reported" true (i >= 2)

let test_render () =
  let out = L.render (L.diff "a\nb\n" "a\nc\n") in
  Alcotest.(check string) "classic rendering" "  a\n- b\n+ c\n" out

(* Reconstruct both sides from the hunks. *)
let line_diff_reconstruction_prop =
  QCheck2.Test.make ~name:"hunks reconstruct both inputs" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_bound 12) (string_size ~gen:(char_range 'a' 'c') (int_bound 2)))
        (list_size (int_bound 12) (string_size ~gen:(char_range 'a' 'c') (int_bound 2))))
    (fun (l1, l2) ->
      let old_text = String.concat "\n" l1 and new_text = String.concat "\n" l2 in
      let hunks = L.diff old_text new_text in
      let olds = ref [] and news = ref [] in
      List.iter
        (fun h ->
          match h with
          | L.Equal a ->
            olds := Array.to_list a @ !olds;
            news := Array.to_list a @ !news
          | L.Delete a -> olds := Array.to_list a @ !olds
          | L.Insert a -> news := Array.to_list a @ !news
          | L.Replace (a, b) ->
            olds := Array.to_list a @ !olds;
            news := Array.to_list b @ !news)
        (List.rev hunks);
      !olds = Array.to_list (L.lines old_text) && !news = Array.to_list (L.lines new_text))

let () =
  Alcotest.run "textdiff"
    [
      ( "word-compare",
        [
          Alcotest.test_case "tokenization" `Quick test_words;
          Alcotest.test_case "identity" `Quick test_distance_identity;
          Alcotest.test_case "range" `Quick test_distance_range;
          Alcotest.test_case "paper semantics" `Quick test_paper_semantics;
          QCheck_alcotest.to_alcotest distance_properties;
        ] );
      ( "levenshtein",
        [
          Alcotest.test_case "known distances" `Quick test_levenshtein_known;
          Alcotest.test_case "normalized" `Quick test_levenshtein_normalized;
          QCheck_alcotest.to_alcotest levenshtein_metric_prop;
        ] );
      ( "line-diff",
        [
          Alcotest.test_case "lines" `Quick test_lines;
          Alcotest.test_case "basic hunks" `Quick test_line_diff_basic;
          Alcotest.test_case "moves become del+ins" `Quick
            test_line_diff_move_is_del_plus_ins;
          Alcotest.test_case "render" `Quick test_render;
          QCheck_alcotest.to_alcotest line_diff_reconstruction_prop;
        ] );
    ]
