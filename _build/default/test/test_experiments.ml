(* Tests for Treediff_experiments: the measurement harness is consistent,
   the analytic bound really bounds the measurement, the Table 1 counter is
   monotone, and the sample run exercises every Table 2 convention.

   The full corpora are used sparingly (they cost seconds); most checks run
   on one small pair. *)

module Node = Treediff_tree.Node
module Tree = Treediff_tree.Tree
module E = Treediff_experiments
module Measure = Treediff_experiments.Measure
module Docgen = Treediff_workload.Docgen
module Mutate = Treediff_workload.Mutate
module P = Treediff_util.Prng

let small_pair seed actions =
  let g = P.create seed in
  let gen = Tree.gen () in
  let t1 = Docgen.generate g gen Docgen.small in
  let t2, _ = Mutate.mutate g gen t1 ~actions in
  (t1, t2)

let test_measure_row_consistency () =
  let t1, t2 = small_pair 61 8 in
  let row, result = Measure.pair t1 t2 in
  Alcotest.(check int) "d = script length" (List.length result.Treediff.Diff.script)
    row.Measure.d;
  Alcotest.(check int) "n = total leaves"
    (List.length (Node.leaves t1) + List.length (Node.leaves t2))
    row.Measure.n;
  Alcotest.(check bool) "comparisons positive" true (Measure.comparisons row > 0);
  Alcotest.(check int) "ops decompose" row.Measure.d
    (row.Measure.inserts + row.Measure.deletes + row.Measure.updates + row.Measure.moves)

let test_analytic_bound_holds () =
  (* The §5.3 bound must dominate the measured comparison count whenever
     there are edits (e > 0). *)
  List.iter
    (fun seed ->
      let t1, t2 = small_pair seed 10 in
      let row, _ = Measure.pair t1 t2 in
      if row.Measure.e > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "bound >= measured (seed %d)" seed)
          true
          (Measure.analytic_bound row >= Measure.comparisons row))
    [ 71; 72; 73; 74; 75 ]

let test_table1_monotone () =
  let data = E.Table1.compute ~duplicate_rate:0.05 () in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.E.Table1.mismatch_bound_pct <= b.E.Table1.mismatch_bound_pct +. 1e-9
      && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone in t" true (monotone data.E.Table1.rows);
  Alcotest.(check int) "six thresholds" 6 (List.length data.E.Table1.rows);
  Alcotest.(check bool) "duplicates produce violations" true
    (data.E.Table1.violating_leaf_pct > 0.0)

let test_table1_clean_corpus_low () =
  (* Without injected duplicates, accidental near-duplicate sentences are
     rare (this is the paper's observation that MC3 holds in practice), so
     the mismatch bound stays small even at t = 1. *)
  let data = E.Table1.compute ~duplicate_rate:0.0 () in
  Alcotest.(check bool) "few accidental violations" true
    (data.E.Table1.violating_leaf_pct < 2.0);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "bound small at t=%.1f" r.E.Table1.t)
        true
        (r.E.Table1.mismatch_bound_pct < 5.0))
    data.E.Table1.rows

let test_sample_run_conventions () =
  let data = E.Sample_run.compute () in
  List.iter
    (fun (name, seen) ->
      Alcotest.(check bool) (Printf.sprintf "convention %S exercised" name) true seen)
    data.E.Sample_run.conventions_seen;
  (* the sample run's script verifies *)
  let out = data.E.Sample_run.output in
  Alcotest.(check bool) "sample script verifies" true
    (Treediff.Diff.check out.Treediff_doc.Ladiff.result
       ~t1:out.Treediff_doc.Ladiff.old_tree ~t2:out.Treediff_doc.Ladiff.new_tree
    = Ok ())

let test_sample_run_finds_moves_and_updates () =
  let data = E.Sample_run.compute () in
  let m = data.E.Sample_run.output.Treediff_doc.Ladiff.result.Treediff.Diff.measure in
  Alcotest.(check bool) "moves found" true (m.Treediff_edit.Script.moves >= 2);
  Alcotest.(check bool) "updates found" true (m.Treediff_edit.Script.updates >= 2);
  Alcotest.(check bool) "inserts found" true (m.Treediff_edit.Script.inserts >= 1)

let test_structural_lower_bound_function () =
  let t1, t2 = small_pair 83 6 in
  let _, result = Measure.pair t1 t2 in
  let structural =
    List.length (List.filter Treediff_edit.Op.is_structural result.Treediff.Diff.script)
  in
  (* root pair matched here (clean small pair), so the bound applies directly *)
  if result.Treediff.Diff.dummy = None then
    Alcotest.(check int) "script meets C.2 bound" structural
      (E.Optimality.structural_lower_bound ~matching:result.Treediff.Diff.matching t1 t2)

let test_scaling_smoke () =
  let data = E.Scaling.compute ~zs_cutoff:60 ~sizes:[ 40; 80 ] () in
  Alcotest.(check int) "two points" 2 (List.length data.E.Scaling.points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "comparisons measured" true (p.E.Scaling.fast_comparisons > 0))
    data.E.Scaling.points

let test_quality_smoke () =
  let data = E.Quality.compute () in
  let find name =
    List.find (fun s -> s.E.Quality.name = name) data.E.Quality.scenarios
  in
  let para = find "move 1 paragraph" in
  Alcotest.(check int) "paragraph move is one op" 1 para.E.Quality.ours_ops;
  Alcotest.(check int) "and it is a move" 1 para.E.Quality.ours_moves;
  Alcotest.(check bool) "flat diff reports lines instead" true
    (para.E.Quality.flat_deleted_lines >= 1 && para.E.Quality.flat_inserted_lines >= 1);
  let upd = find "update 3 sentences" in
  Alcotest.(check int) "updates detected as updates" 3 upd.E.Quality.ours_updates;
  Alcotest.(check int) "no structural ops for updates" 0
    (upd.E.Quality.ours_ins_del + upd.E.Quality.ours_moves)

(* The two §5.3 bound components hold separately: r1 ≤ ne + e² leaf compares
   and r2 ≤ 2lne partner checks. *)
let split_bounds_prop =
  QCheck2.Test.make ~name:"r1 <= ne+e^2 and r2 <= 2lne separately" ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = Treediff_util.Prng.create seed in
      let gen = Tree.gen () in
      let t1 = Docgen.generate g gen Docgen.small in
      let t2, _ = Mutate.mutate g gen t1 ~actions:(1 + Treediff_util.Prng.int g 12) in
      let row, _ = Measure.pair t1 t2 in
      let n = row.Measure.n and e = row.Measure.e and l = row.Measure.l in
      e = 0
      || (row.Measure.leaf_compares <= (n * e) + (e * e)
         && row.Measure.partner_checks <= 2 * l * n * e))

let test_ablation_curves () =
  let data = E.Ablation.compute () in
  (* threshold sweep: matched pairs decrease and cost increases with t *)
  let rec pairs_monotone = function
    | (a : E.Ablation.threshold_row) :: (b :: _ as rest) ->
      a.E.Ablation.matched_pairs >= b.E.Ablation.matched_pairs && pairs_monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "matched pairs decrease with t" true
    (pairs_monotone data.E.Ablation.thresholds);
  (match (data.E.Ablation.thresholds, List.rev data.E.Ablation.thresholds) with
  | lo :: _, hi :: _ ->
    Alcotest.(check bool) "t=0.5 at most as dear as t=1.0" true
      (lo.E.Ablation.cost <= hi.E.Ablation.cost)
  | _ -> Alcotest.fail "empty sweep");
  (* A(k): the full scan is at most as dear as the LCS-only matcher *)
  let find k = List.find (fun (r : E.Ablation.window_row) -> r.E.Ablation.k = k) data.E.Ablation.windows in
  Alcotest.(check bool) "k=inf cost <= k=0 cost" true
    ((find "inf").E.Ablation.cost <= (find "0").E.Ablation.cost)

let () =
  Alcotest.run "experiments"
    [
      ( "measure",
        [
          Alcotest.test_case "row consistency" `Quick test_measure_row_consistency;
          Alcotest.test_case "analytic bound holds" `Quick test_analytic_bound_holds;
          QCheck_alcotest.to_alcotest split_bounds_prop;
        ] );
      ( "table1",
        [
          Alcotest.test_case "monotone in t" `Slow test_table1_monotone;
          Alcotest.test_case "clean corpus stays low" `Slow test_table1_clean_corpus_low;
        ] );
      ( "sample-run",
        [
          Alcotest.test_case "conventions exercised" `Quick test_sample_run_conventions;
          Alcotest.test_case "changes detected" `Quick test_sample_run_finds_moves_and_updates;
        ] );
      ( "optimality",
        [ Alcotest.test_case "lower bound function" `Quick test_structural_lower_bound_function ] );
      ( "scaling", [ Alcotest.test_case "smoke" `Slow test_scaling_smoke ] );
      ( "ablation", [ Alcotest.test_case "tradeoff curves" `Slow test_ablation_curves ] );
      ( "quality", [ Alcotest.test_case "ground-truth scenarios" `Slow test_quality_smoke ] );
    ]
