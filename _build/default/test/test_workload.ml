(* Tests for Treediff_workload: generators are deterministic, mutations are
   well-formed and honestly reported, corpora have the advertised shape. *)

module Node = Treediff_tree.Node
module Tree = Treediff_tree.Tree
module Iso = Treediff_tree.Iso
module Invariant = Treediff_tree.Invariant
module Docgen = Treediff_workload.Docgen
module Mutate = Treediff_workload.Mutate
module Corpus = Treediff_workload.Corpus
module Treegen = Treediff_workload.Treegen
module Doc = Treediff_doc.Doc_tree
module P = Treediff_util.Prng

let test_docgen_deterministic () =
  let t1 = Docgen.generate (P.create 5) (Tree.gen ()) Docgen.small in
  let t2 = Docgen.generate (P.create 5) (Tree.gen ()) Docgen.small in
  Alcotest.(check bool) "same seed, same document" true (Iso.equal t1 t2);
  let t3 = Docgen.generate (P.create 6) (Tree.gen ()) Docgen.small in
  Alcotest.(check bool) "different seed, different document" false (Iso.equal t1 t3)

let test_docgen_schema () =
  let t = Docgen.generate (P.create 7) (Tree.gen ()) Docgen.medium in
  Invariant.check_exn t;
  Node.iter_preorder
    (fun (n : Node.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "label %s in schema" n.Node.label)
        true
        (Doc.is_document_label n.Node.label))
    t;
  (* sentences carry text; structural labels don't (except headings) *)
  Node.iter_preorder
    (fun (n : Node.t) ->
      if String.equal n.Node.label Doc.sentence then
        Alcotest.(check bool) "sentence non-empty" true (String.length n.Node.value > 0)
      else if
        String.equal n.Node.label Doc.paragraph
        || String.equal n.Node.label Doc.list
        || String.equal n.Node.label Doc.item
      then Alcotest.(check string) "structural value null" "" n.Node.value)
    t

let test_docgen_profiles_scale () =
  (* Average over seeds: individual draws vary a lot. *)
  let mean p =
    let total = ref 0 in
    for seed = 1 to 10 do
      total := !total + Doc.sentence_count (Docgen.generate (P.create seed) (Tree.gen ()) p)
    done;
    !total / 10
  in
  let s = mean Docgen.small and m = mean Docgen.medium and l = mean Docgen.large in
  Alcotest.(check bool) "small < medium < large" true (s < m && m < l);
  Alcotest.(check bool) "small has tens of sentences" true (s >= 15);
  Alcotest.(check bool) "large has hundreds" true (l >= 200)

let test_docgen_duplicates () =
  let profile = { Docgen.small with Docgen.duplicate_rate = 0.5 } in
  let t = Docgen.generate (P.create 13) (Tree.gen ()) profile in
  let sentences =
    List.map (fun (n : Node.t) -> n.Node.value) (Node.leaves t)
  in
  let close a b = Treediff_textdiff.Word_compare.distance a b <= 1.0 in
  let has_near_dup =
    List.exists
      (fun s -> List.length (List.filter (close s) sentences) >= 2)
      sentences
  in
  Alcotest.(check bool) "high duplicate rate produces near-duplicates" true has_near_dup

let test_sentence_generator () =
  let g = P.create 17 in
  for _ = 1 to 50 do
    let s = Docgen.sentence g 12 in
    let words = Treediff_textdiff.Word_compare.words s in
    Alcotest.(check bool) "at least 7 words" true (Array.length words >= 7);
    Alcotest.(check bool) "ends with period" true (s.[String.length s - 1] = '.')
  done

(* ---------------------------------------------------------------- mutate *)

let test_mutate_deterministic_and_pure () =
  let base = Docgen.generate (P.create 19) (Tree.gen ()) Docgen.small in
  let snapshot = Treediff_tree.Codec.to_string base in
  let m1, r1 = Mutate.mutate (P.create 23) (Tree.gen ~start:10_000 ()) base ~actions:10 in
  let m2, r2 = Mutate.mutate (P.create 23) (Tree.gen ~start:10_000 ()) base ~actions:10 in
  Alcotest.(check bool) "deterministic" true (Iso.equal m1 m2);
  Alcotest.(check int) "same report" r1.Mutate.actions r2.Mutate.actions;
  Alcotest.(check string) "input untouched" snapshot (Treediff_tree.Codec.to_string base)

let test_mutate_report () =
  let base = Docgen.generate (P.create 29) (Tree.gen ()) Docgen.medium in
  let t, report = Mutate.mutate (P.create 31) (Tree.gen ~start:10_000 ()) base ~actions:25 in
  Invariant.check_exn t;
  Alcotest.(check int) "all actions applied" 25 report.Mutate.actions;
  Alcotest.(check int) "tally sums to actions" 25
    (List.fold_left (fun acc (_, n) -> acc + n) 0 report.Mutate.applied);
  Alcotest.(check bool) "document actually changed" false (Iso.equal base t)

let test_mutate_fresh_ids () =
  let gen = Tree.gen () in
  let base = Docgen.generate (P.create 37) gen Docgen.small in
  let t, _ = Mutate.mutate (P.create 41) gen base ~actions:5 in
  let ids tree =
    List.map (fun (n : Node.t) -> n.Node.id) (Node.preorder tree)
  in
  let base_ids = ids base in
  Alcotest.(check bool) "ids disjoint from base" true
    (List.for_all (fun i -> not (List.mem i base_ids)) (ids t))

let test_mutate_zero_actions () =
  let base = Docgen.generate (P.create 43) (Tree.gen ()) Docgen.small in
  let t, report = Mutate.mutate (P.create 47) (Tree.gen ~start:10_000 ()) base ~actions:0 in
  Alcotest.(check int) "no actions" 0 report.Mutate.actions;
  Alcotest.(check bool) "identical copy" true (Iso.equal base t)

let mutate_wellformed_prop =
  QCheck2.Test.make ~name:"mutations keep trees well-formed and schema-clean" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let base = Docgen.generate g gen Docgen.small in
      let t, _ = Mutate.mutate ~mix:Mutate.move_heavy_mix g gen base ~actions:(1 + P.int g 20) in
      Invariant.check t = Ok ()
      && List.for_all
           (fun (n : Node.t) -> Doc.is_document_label n.Node.label)
           (Node.preorder t))

(* ---------------------------------------------------------------- corpus *)

let test_corpus_shape () =
  let sets = Corpus.standard () in
  Alcotest.(check int) "three sets" 3 (List.length sets);
  List.iter
    (fun set ->
      Alcotest.(check int)
        (set.Corpus.name ^ " versions")
        6
        (List.length set.Corpus.versions);
      Alcotest.(check int)
        (set.Corpus.name ^ " all pairs")
        15
        (List.length (Corpus.pairs set));
      Alcotest.(check int)
        (set.Corpus.name ^ " consecutive pairs")
        5
        (List.length (Corpus.consecutive_pairs set)))
    sets

let test_corpus_deterministic () =
  let s1 = List.hd (Corpus.standard ()) and s2 = List.hd (Corpus.standard ()) in
  List.iter2
    (fun a b -> Alcotest.(check bool) "versions reproducible" true (Iso.equal a b))
    s1.Corpus.versions s2.Corpus.versions

let test_corpus_ids_unique_across_versions () =
  let set =
    Corpus.make ~name:"t" ~seed:1 ~profile:Docgen.small ~versions:3 ~edits_per_version:5
  in
  let all_ids =
    List.concat_map
      (fun v -> List.map (fun (n : Node.t) -> n.Node.id) (Node.preorder v))
      set.Corpus.versions
  in
  Alcotest.(check int) "no id reuse" (List.length all_ids)
    (List.length (List.sort_uniq compare all_ids))

(* --------------------------------------------------------------- treegen *)

let test_treegen_labels_by_depth () =
  let g = P.create 53 in
  let t =
    Treegen.random_labeled g (Tree.gen ()) ~max_depth:3 ~max_width:3
      ~labels:[| "R"; "A"; "B"; "C" |] ~vocab:10
  in
  Invariant.check_exn t;
  Alcotest.(check string) "root label" "R" t.Node.label;
  Node.iter_preorder
    (fun (n : Node.t) ->
      let expected = [| "R"; "A"; "B"; "C" |].(min (Node.depth n) 3) in
      Alcotest.(check string) "label follows depth" expected n.Node.label)
    t

let perturb_wellformed_prop =
  QCheck2.Test.make ~name:"perturb keeps trees well-formed" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t = Treegen.random_document g gen ~paragraphs:(1 + P.int g 8) ~vocab:30 in
      let t2 = Treegen.perturb g gen t in
      Invariant.check t2 = Ok () && Invariant.check t = Ok ())

let () =
  Alcotest.run "workload"
    [
      ( "docgen",
        [
          Alcotest.test_case "deterministic" `Quick test_docgen_deterministic;
          Alcotest.test_case "schema conformance" `Quick test_docgen_schema;
          Alcotest.test_case "profiles scale" `Quick test_docgen_profiles_scale;
          Alcotest.test_case "duplicate knob" `Quick test_docgen_duplicates;
          Alcotest.test_case "sentence generator" `Quick test_sentence_generator;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "deterministic and pure" `Quick
            test_mutate_deterministic_and_pure;
          Alcotest.test_case "report" `Quick test_mutate_report;
          Alcotest.test_case "fresh ids" `Quick test_mutate_fresh_ids;
          Alcotest.test_case "zero actions" `Quick test_mutate_zero_actions;
          QCheck_alcotest.to_alcotest mutate_wellformed_prop;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "shape" `Quick test_corpus_shape;
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "ids unique across versions" `Quick
            test_corpus_ids_unique_across_versions;
        ] );
      ( "treegen",
        [
          Alcotest.test_case "labels by depth" `Quick test_treegen_labels_by_depth;
          QCheck_alcotest.to_alcotest perturb_wellformed_prop;
        ] );
    ]
