(* Tests for Treediff_util: Vec, Prng, Stats, Table. *)

module Vec = Treediff_util.Vec
module Prng = Treediff_util.Prng
module Stats = Treediff_util.Stats
module Table = Treediff_util.Table

let check = Alcotest.(check int)

(* ------------------------------------------------------------------- Vec *)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh is empty" true (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  check "length" 3 (Vec.length v);
  check "get 0" 1 (Vec.get v 0);
  check "get 2" 3 (Vec.get v 2);
  Vec.set v 1 20;
  check "set" 20 (Vec.get v 1)

let test_vec_insert_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Vec.insert v 0 0;
  Alcotest.(check (list int)) "insert front" [ 0; 1; 2; 3; 4 ] (Vec.to_list v);
  Vec.insert v 5 99;
  Alcotest.(check (list int)) "insert end" [ 0; 1; 2; 3; 4; 99 ] (Vec.to_list v);
  Vec.insert v 3 33;
  Alcotest.(check (list int)) "insert middle" [ 0; 1; 2; 33; 3; 4; 99 ] (Vec.to_list v);
  let x = Vec.remove v 3 in
  check "removed element" 33 x;
  Alcotest.(check (list int)) "after remove" [ 0; 1; 2; 3; 4; 99 ] (Vec.to_list v);
  let first = Vec.remove v 0 in
  check "remove front" 0 first;
  let last = Vec.remove v (Vec.length v - 1) in
  check "remove back" 99 last;
  Alcotest.(check (list int)) "final" [ 1; 2; 3; 4 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index 1 out of bounds (length 1)") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Vec: index -1 out of bounds (length 1)") (fun () ->
      ignore (Vec.get v (-1)));
  Alcotest.check_raises "insert out of bounds"
    (Invalid_argument "Vec.insert: index 3 out of bounds (length 1)") (fun () ->
      Vec.insert v 3 9)

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check "fold sum" 6 (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  Alcotest.(check bool) "for_all" true (Vec.for_all (fun x -> x > 0) v);
  Alcotest.(check (option int)) "index" (Some 1) (Vec.index (fun x -> x = 2) v);
  Alcotest.(check (option int)) "index missing" None (Vec.index (fun x -> x = 9) v);
  let c = Vec.copy v in
  Vec.push c 4;
  check "copy is independent" 3 (Vec.length v)

(* Model-based property: a Vec behaves like the list it models under a
   random sequence of push/insert/remove. *)
let vec_model_prop =
  QCheck2.Test.make ~name:"vec behaves like list model" ~count:500
    QCheck2.Gen.(list (pair (int_range 0 2) small_nat))
    (fun cmds ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun (cmd, arg) ->
          match cmd with
          | 0 ->
            Vec.push v arg;
            model := !model @ [ arg ]
          | 1 ->
            let i = if !model = [] then 0 else arg mod (List.length !model + 1) in
            Vec.insert v i arg;
            let rec ins k = function
              | rest when k = 0 -> arg :: rest
              | [] -> [ arg ]
              | x :: rest -> x :: ins (k - 1) rest
            in
            model := ins i !model
          | _ ->
            if !model <> [] then begin
              let i = arg mod List.length !model in
              ignore (Vec.remove v i);
              model := List.filteri (fun j _ -> j <> i) !model
            end)
        cmds;
      Vec.to_list v = !model)

(* ------------------------------------------------------------------ Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  let a = Prng.create 42 in
  for _ = 1 to 20 do
    if Prng.int a 1_000_000 <> Prng.int c 1_000_000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10);
    let y = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (y >= -5 && y <= 5);
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_shuffle_permutes () =
  let g = Prng.create 9 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_prng_copy_and_split () =
  let g = Prng.create 5 in
  ignore (Prng.int g 100);
  let h = Prng.copy g in
  check "copy continues identically" (Prng.int g 1000) (Prng.int h 1000);
  let s1 = Prng.split g in
  let s2 = Prng.split g in
  Alcotest.(check bool) "splits differ" true (Prng.int s1 1_000_000 <> Prng.int s2 1_000_000)

let test_prng_chance_extremes () =
  let g = Prng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Prng.chance g 1.0);
    Alcotest.(check bool) "p=0 always false" false (Prng.chance g 0.0)
  done

(* ----------------------------------------------------------------- Stats *)

let test_stats () =
  let s = Stats.create () in
  s.Stats.leaf_compares <- 3;
  s.Stats.partner_checks <- 4;
  check "total" 7 (Stats.total s);
  let acc = Stats.create () in
  Stats.add acc s;
  Stats.add acc s;
  check "accumulate" 14 (Stats.total acc);
  Stats.reset s;
  check "reset" 0 (Stats.total s)

(* ----------------------------------------------------------------- Table *)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "count" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  (* all lines equal width of longest row *)
  let lines = String.split_on_char '\n' (String.trim out) in
  check "line count" 4 (List.length lines)

let test_table_row_mismatch () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Table.add_row: expected 2 cells, got 1") (fun () ->
      Table.add_row t [ "only" ])

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416" (Table.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "pct" "50.0%" (Table.cell_pct 0.5)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "insert/remove" `Quick test_vec_insert_remove;
          Alcotest.test_case "bounds errors" `Quick test_vec_bounds;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          QCheck_alcotest.to_alcotest vec_model_prop;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "copy and split" `Quick test_prng_copy_and_split;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
        ] );
      ("stats", [ Alcotest.test_case "counters" `Quick test_stats ]);
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row width mismatch" `Quick test_table_row_mismatch;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
    ]
