(* Tests for Treediff.Diff and Treediff.Config — the end-to-end pipeline. *)

module Node = Treediff_tree.Node
module Tree = Treediff_tree.Tree
module Iso = Treediff_tree.Iso
module Codec = Treediff_tree.Codec
module Diff = Treediff.Diff
module Config = Treediff.Config
module P = Treediff_util.Prng

let pair a b =
  let gen = Tree.gen () in
  (Codec.parse gen a, Codec.parse gen b)

let test_apply_and_check () =
  let t1, t2 = pair {|(D (P (S "a") (S "b")) (P (S "c")))|}
      {|(D (P (S "c") (S "n")) (P (S "b") (S "a")))|}
  in
  let r = Diff.diff t1 t2 in
  let out = Diff.apply r t1 in
  Alcotest.(check bool) "apply yields T2" true (Iso.equal out t2);
  Alcotest.(check bool) "check passes" true (Diff.check r ~t1 ~t2 = Ok ());
  (* applying to the wrong tree fails loudly *)
  let other, _ = pair {|(X (S "zzz"))|} {|(X)|} in
  Alcotest.(check bool) "check against wrong tree fails" true
    (Diff.check r ~t1:other ~t2 <> Ok ())

let test_apply_with_dummy_roots () =
  let t1, t2 = pair {|(OLD (S "a"))|} {|(NEW (S "a"))|} in
  let r = Diff.diff t1 t2 in
  Alcotest.(check bool) "dummy used" true (r.Diff.dummy <> None);
  let out = Diff.apply r t1 in
  Alcotest.(check bool) "apply unwraps the dummy" true (Iso.equal out t2);
  Alcotest.(check bool) "check handles dummies" true (Diff.check r ~t1 ~t2 = Ok ())

let test_inputs_not_mutated () =
  let t1, t2 = pair {|(D (P (S "a")))|} {|(D (P (S "b")) (P (S "c")))|} in
  let s1 = Codec.to_string t1 and s2 = Codec.to_string t2 in
  ignore (Diff.diff t1 t2);
  Alcotest.(check string) "t1 untouched" s1 (Codec.to_string t1);
  Alcotest.(check string) "t2 untouched" s2 (Codec.to_string t2)

let test_algorithm_choice () =
  let t1, t2 = pair {|(D (P (S "a") (S "b")))|} {|(D (P (S "b") (S "a")))|} in
  let fast = Diff.diff ~config:{ Config.default with Config.algorithm = Config.Fast_match } t1 t2 in
  let simple =
    Diff.diff ~config:{ Config.default with Config.algorithm = Config.Simple_match } t1 t2
  in
  Alcotest.(check bool) "same matching" true
    (Treediff_matching.Matching.equal fast.Diff.matching simple.Diff.matching);
  Alcotest.(check (float 1e-9)) "same cost" fast.Diff.measure.Treediff_edit.Script.cost
    simple.Diff.measure.Treediff_edit.Script.cost

let test_stats_populated () =
  let t1, t2 = pair {|(D (S "a") (S "b"))|} {|(D (S "b") (S "a"))|} in
  let r = Diff.diff t1 t2 in
  Alcotest.(check bool) "leaf compares counted" true
    (r.Diff.stats.Treediff_util.Stats.leaf_compares > 0)

let test_config_with_compare () =
  (* A custom compare makes near-equal values match as updates. *)
  let t1, t2 = pair {|(D (S "the color is red"))|} {|(D (S "the color is blue"))|} in
  let config = Config.with_compare Treediff_textdiff.Word_compare.distance in
  let r = Diff.diff ~config t1 t2 in
  Alcotest.(check int) "one update, no ins/del" 1
    (List.length r.Diff.script);
  Alcotest.(check int) "updates" 1 r.Diff.measure.Treediff_edit.Script.updates

let test_diff_with_matching_empty () =
  (* An empty matching forces a full rebuild: everything inserted+deleted,
     still correct. *)
  let t1, t2 = pair {|(D (S "a"))|} {|(D (S "a"))|} in
  let r = Diff.diff_with_matching ~matching:(Treediff_matching.Matching.create ()) t1 t2 in
  Alcotest.(check bool) "dummy (roots unmatched)" true (r.Diff.dummy <> None);
  let out = Diff.apply r t1 in
  Alcotest.(check bool) "still correct" true (Iso.equal out t2)

let test_measure_consistency () =
  let t1, t2 = pair {|(D (P (S "a") (S "b")) (P (S "c")))|}
      {|(D (P (S "b")) (P (S "c") (S "d")))|}
  in
  let r = Diff.diff t1 t2 in
  let m = r.Diff.measure in
  Alcotest.(check int) "d = ops" (List.length r.Diff.script)
    (Treediff_edit.Script.unweighted m);
  Alcotest.(check bool) "e >= structural ops" true
    (m.Treediff_edit.Script.weighted
    >= m.Treediff_edit.Script.inserts + m.Treediff_edit.Script.deletes
       + m.Treediff_edit.Script.moves)

(* ----------------------------------------------------------------- merge *)

module Merge = Treediff.Merge

let test_merge_conflict_detection () =
  let gen = Tree.gen () in
  let base =
    Codec.parse gen {|(D (S "shared one") (S "the target sentence is here") (S "shared two"))|}
  in
  let ours =
    Codec.parse gen
      {|(D (S "shared one") (S "the target sentence is here now") (S "shared two"))|}
  in
  let theirs =
    Codec.parse gen
      {|(D (S "shared one") (S "the target sentence is there") (S "shared two"))|}
  in
  let config = Config.with_compare Treediff_textdiff.Word_compare.distance in
  let m = Merge.correlate ~config ~base ~ours ~theirs () in
  Alcotest.(check int) "one conflict" 1 (List.length m.Merge.conflicts);
  (match m.Merge.conflicts with
  | [ c ] ->
    Alcotest.(check string) "conflicting node value" "the target sentence is here"
      c.Merge.value;
    Alcotest.(check bool) "both sides present" true (c.Merge.ours <> [] && c.Merge.theirs <> [])
  | _ -> Alcotest.fail "expected one conflict");
  Alcotest.(check int) "no one-sided edits" 0
    (List.length m.Merge.ours_only + List.length m.Merge.theirs_only)

let test_merge_agreement_is_not_conflict () =
  let gen = Tree.gen () in
  let base = Codec.parse gen {|(D (S "the shared start here") (S "other stays"))|} in
  (* both sides make the identical update *)
  let edited = {|(D (S "the shared start here now") (S "other stays"))|} in
  let ours = Codec.parse gen edited in
  let theirs = Codec.parse gen edited in
  let config = Config.with_compare Treediff_textdiff.Word_compare.distance in
  let m = Merge.correlate ~config ~base ~ours ~theirs () in
  Alcotest.(check int) "identical edits agree" 0 (List.length m.Merge.conflicts)

let test_merge_disjoint_edits () =
  let gen = Tree.gen () in
  let base = Codec.parse gen {|(D (S "alpha") (S "beta") (S "gamma") (S "delta"))|} in
  let ours = Codec.parse gen {|(D (S "alpha") (S "beta") (S "gamma"))|} in
  (* ours deletes delta *)
  let theirs = Codec.parse gen {|(D (S "beta") (S "alpha") (S "gamma") (S "delta"))|} in
  (* theirs swaps alpha/beta *)
  let m = Merge.correlate ~base ~ours ~theirs () in
  Alcotest.(check int) "no conflicts" 0 (List.length m.Merge.conflicts);
  Alcotest.(check bool) "ours touched something" true (m.Merge.ours_only <> []);
  Alcotest.(check bool) "theirs touched something" true (m.Merge.theirs_only <> [])

(* End-to-end property through the public API, including apply/check. *)
let end_to_end_prop =
  QCheck2.Test.make ~name:"diff/apply/check round-trip" ~count:150
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t1 =
        Treediff_workload.Treegen.random_labeled g gen ~max_depth:4 ~max_width:4
          ~labels:[| "R"; "A"; "B"; "S" |] ~vocab:(20 + P.int g 50)
      in
      let t2 = Treediff_workload.Treegen.perturb g gen t1 in
      let r = Diff.diff t1 t2 in
      Diff.check r ~t1 ~t2 = Ok ())

(* Self-diff is always empty. *)
let self_diff_prop =
  QCheck2.Test.make ~name:"diff t t is empty" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t1 =
        Treediff_workload.Treegen.random_document g gen ~paragraphs:(1 + P.int g 5)
          ~vocab:(20 + P.int g 80)
      in
      let t2 = Tree.relabel_ids gen t1 in
      let r = Diff.diff t1 t2 in
      r.Diff.script = [])

let () =
  Alcotest.run "diff"
    [
      ( "pipeline",
        [
          Alcotest.test_case "apply and check" `Quick test_apply_and_check;
          Alcotest.test_case "dummy roots" `Quick test_apply_with_dummy_roots;
          Alcotest.test_case "inputs not mutated" `Quick test_inputs_not_mutated;
          Alcotest.test_case "algorithm choice" `Quick test_algorithm_choice;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
          Alcotest.test_case "custom compare" `Quick test_config_with_compare;
          Alcotest.test_case "empty matching" `Quick test_diff_with_matching_empty;
          Alcotest.test_case "measure consistency" `Quick test_measure_consistency;
        ] );
      ( "merge",
        [
          Alcotest.test_case "conflict detection" `Quick test_merge_conflict_detection;
          Alcotest.test_case "identical edits agree" `Quick test_merge_agreement_is_not_conflict;
          Alcotest.test_case "disjoint edits" `Quick test_merge_disjoint_edits;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest end_to_end_prop;
          QCheck_alcotest.to_alcotest self_diff_prop;
        ] );
    ]
