(* Tests for Treediff_zs.Zhang_shasha against an independent brute-force
   forest-edit-distance oracle, plus mapping validity. *)

module Node = Treediff_tree.Node
module Tree = Treediff_tree.Tree
module Codec = Treediff_tree.Codec
module ZS = Treediff_zs.Zhang_shasha
module P = Treediff_util.Prng

(* Memoized forest edit distance: delete promotes children, unit costs.
   Exponential-ish but fine for the small trees used here. *)
let oracle (t1 : Node.t) (t2 : Node.t) =
  let memo = Hashtbl.create 1024 in
  let key f1 f2 =
    ( String.concat "," (List.map (fun (n : Node.t) -> string_of_int n.id) f1),
      String.concat "," (List.map (fun (n : Node.t) -> string_of_int n.id) f2) )
  in
  let rel (a : Node.t) (b : Node.t) =
    if String.equal a.label b.label && String.equal a.value b.value then 0.0 else 1.0
  in
  let forest_size f = List.fold_left (fun acc n -> acc + Node.size n) 0 f in
  let rec fdist f1 f2 =
    match (f1, f2) with
    | [], [] -> 0.0
    | [], f2 -> float_of_int (forest_size f2)
    | f1, [] -> float_of_int (forest_size f1)
    | _ -> (
      let k = key f1 f2 in
      match Hashtbl.find_opt memo k with
      | Some v -> v
      | None ->
        let rec split = function
          | [ x ] -> ([], x)
          | x :: rest ->
            let l, last = split rest in
            (x :: l, last)
          | [] -> assert false
        in
        let r1, v1 = split f1 and r2, v2 = split f2 in
        let del = fdist (r1 @ Node.children v1) f2 +. 1.0 in
        let ins = fdist f1 (r2 @ Node.children v2) +. 1.0 in
        let sub =
          fdist r1 r2 +. fdist (Node.children v1) (Node.children v2) +. rel v1 v2
        in
        let v = min del (min ins sub) in
        Hashtbl.replace memo k v;
        v)
  in
  fdist [ t1 ] [ t2 ]

let parse src = Codec.parse (Tree.gen ()) src

let test_known_distances () =
  let check name a b expected =
    Alcotest.(check (float 1e-9)) name expected (ZS.distance (parse a) (parse b))
  in
  check "identical" {|(A (B) (C))|} {|(A (B) (C))|} 0.0;
  check "one relabel" {|(A (B) (C))|} {|(A (B) (D))|} 1.0;
  check "one insert" {|(A (B))|} {|(A (B) (C))|} 1.0;
  check "one delete" {|(A (B (C)))|} {|(A (C))|} 1.0;
  (* delete promotes children: removing B lifts C to A *)
  check "value relabel" {|(A (B "x"))|} {|(A (B "y"))|} 1.0;
  check "single nodes" {|(A)|} {|(B)|} 1.0

let test_zs_paper_example () =
  (* The classic example from the ZS89 paper (f(d(a c(b)) e) vs
     f(c(d(a b)) e)): distance 2. *)
  let t1 = parse {|(f (d (a) (c (b))) (e))|} in
  let t2 = parse {|(f (c (d (a) (b))) (e))|} in
  Alcotest.(check (float 1e-9)) "zs89 example" 2.0 (ZS.distance t1 t2)

let test_mapping_consistency () =
  let t1 = parse {|(A (B "x") (C (D "y") (E)))|} in
  let t2 = parse {|(A (C (D "z") (E)) (F))|} in
  let r = ZS.mapping t1 t2 in
  Alcotest.(check (float 1e-9)) "mapping dist = distance" (ZS.distance t1 t2) r.ZS.dist;
  (* mapping is one-to-one *)
  let olds = List.map (fun ((a : Node.t), _) -> a.id) r.ZS.pairs in
  let news = List.map (fun (_, (b : Node.t)) -> b.id) r.ZS.pairs in
  Alcotest.(check int) "no duplicate old" (List.length olds)
    (List.length (List.sort_uniq compare olds));
  Alcotest.(check int) "no duplicate new" (List.length news)
    (List.length (List.sort_uniq compare news))

(* The recovered mapping's implied cost equals the reported distance:
   relabels + unmapped deletions + unmapped insertions. *)
let mapping_cost_identity r t1 t2 =
  let mapped_old = List.map (fun ((a : Node.t), _) -> a.id) r.ZS.pairs in
  let mapped_new = List.map (fun (_, (b : Node.t)) -> b.id) r.ZS.pairs in
  let unmapped t mapped =
    List.length
      (List.filter (fun (n : Node.t) -> not (List.mem n.id mapped)) (Node.preorder t))
  in
  float_of_int (r.ZS.relabels + unmapped t1 mapped_old + unmapped t2 mapped_new)

let rec random_tree g gen depth =
  let label = P.pick g [| "A"; "B"; "C" |] in
  let value = Printf.sprintf "v%d" (P.int g 4) in
  let n = if depth >= 3 then 0 else P.int g 4 in
  Tree.node gen label ~value (List.init n (fun _ -> random_tree g gen (depth + 1)))

let zs_vs_oracle_prop =
  QCheck2.Test.make ~name:"zs distance = brute-force oracle" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t1 = random_tree g gen 0 and t2 = random_tree g gen 0 in
      Float.abs (ZS.distance t1 t2 -. oracle t1 t2) < 1e-9)

let zs_mapping_cost_prop =
  QCheck2.Test.make ~name:"zs mapping cost = distance" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t1 = random_tree g gen 0 and t2 = random_tree g gen 0 in
      let r = ZS.mapping t1 t2 in
      Float.abs (r.ZS.dist -. mapping_cost_identity r t1 t2) < 1e-9)

let zs_triangle_prop =
  QCheck2.Test.make ~name:"zs distance: identity and symmetry" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t1 = random_tree g gen 0 and t2 = random_tree g gen 0 in
      ZS.distance t1 t1 = 0.0
      && Float.abs (ZS.distance t1 t2 -. ZS.distance t2 t1) < 1e-9)

let test_to_matching_filters_labels () =
  let t1 = parse {|(A (B "x"))|} in
  let t2 = parse {|(A (C "x"))|} in
  let r = ZS.mapping t1 t2 in
  let m_all = ZS.to_matching ~same_label_only:false r in
  let m_filtered = ZS.to_matching r in
  Alcotest.(check bool) "filtered <= all" true
    (Treediff_matching.Matching.cardinal m_filtered
    <= Treediff_matching.Matching.cardinal m_all);
  List.iter
    (fun (x, y) ->
      let n1 = Option.get (Tree.find_by_id t1 x) in
      let n2 = Option.get (Tree.find_by_id t2 y) in
      Alcotest.(check string) "labels equal" n1.Node.label n2.Node.label)
    (Treediff_matching.Matching.pairs m_filtered)

let test_custom_cost () =
  let t1 = parse {|(A (B "x"))|} in
  let t2 = parse {|(A (B "y"))|} in
  let cost =
    { ZS.unit_cost with ZS.rel = (fun _ _ -> 0.0) (* relabels free *) }
  in
  Alcotest.(check (float 1e-9)) "free relabels" 0.0 (ZS.distance ~cost t1 t2)

let () =
  Alcotest.run "zs"
    [
      ( "distance",
        [
          Alcotest.test_case "known cases" `Quick test_known_distances;
          Alcotest.test_case "ZS89 paper example" `Quick test_zs_paper_example;
          Alcotest.test_case "custom cost" `Quick test_custom_cost;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "consistency" `Quick test_mapping_consistency;
          Alcotest.test_case "to_matching filters labels" `Quick
            test_to_matching_filters_labels;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest zs_vs_oracle_prop;
          QCheck_alcotest.to_alcotest zs_mapping_cost_prop;
          QCheck_alcotest.to_alcotest zs_triangle_prop;
        ] );
    ]
