(* Tests for Treediff.Delta_query — the §9 delta querying/browsing layer. *)

module Tree = Treediff_tree.Tree
module Codec = Treediff_tree.Codec
module Diff = Treediff.Diff
module Delta = Treediff.Delta
module Q = Treediff.Delta_query

(* A delta with one insert, one delete, one update and one move. *)
let sample_delta () =
  let gen = Tree.gen () in
  let t1 =
    Codec.parse gen
      {|(D (P (S "mover") (S "alpha") (S "beta"))
          (P (S "gamma") (S "old-value") (S "delta")))|}
  in
  let t2 =
    Codec.parse gen
      {|(D (P (S "alpha") (S "beta") (S "fresh"))
          (P (S "gamma") (S "delta") (S "mover")))|}
  in
  let r = Diff.diff t1 t2 in
  r.Diff.delta

let test_select_by_kind () =
  let d = sample_delta () in
  Alcotest.(check int) "one insert" 1 (Q.count ~kind:Q.Inserted d);
  Alcotest.(check int) "one delete ghost subtree root" 1
    (List.length
       (List.filter
          (fun (p : Q.path) ->
            match p.Q.ancestors with
            | parent :: _ -> parent.Delta.base <> Delta.Deleted
            | [] -> true)
          (Q.select ~kind:Q.Deleted d)));
  Alcotest.(check int) "one move" 1 (Q.count ~kind:Q.Moved d);
  Alcotest.(check int) "one marker" 1 (Q.count ~kind:Q.Marker d)

let test_select_by_label () =
  let d = sample_delta () in
  Alcotest.(check bool) "sentences exist" true (Q.exists ~label:"S" d);
  Alcotest.(check int) "no bogus label" 0 (Q.count ~label:"Chapter" d);
  (* label + kind combined *)
  Alcotest.(check int) "inserted sentences" 1 (Q.count ~label:"S" ~kind:Q.Inserted d)

let test_changed_and_fold () =
  let d = sample_delta () in
  let changed = Q.changed d in
  Alcotest.(check bool) "some changes" true (changed <> []);
  List.iter
    (fun (p : Q.path) ->
      Alcotest.(check bool) "every result is changed" true (Q.kind_matches Q.Changed p.Q.node))
    changed;
  let total = Q.fold (fun acc _ -> acc + 1) 0 d in
  Alcotest.(check bool) "fold visits every node incl. ghosts" true (total >= 11)

let test_path_string () =
  let d = sample_delta () in
  match Q.select ~kind:Q.Inserted d with
  | [ p ] ->
    let s = Q.path_string p in
    Alcotest.(check bool) "path starts at root" true (String.length s > 1 && s.[0] = 'D');
    Alcotest.(check bool) "path mentions S" true
      (String.length s >= 1 && s.[String.length s - 1] = ']')
  | l -> Alcotest.failf "expected one insert, got %d" (List.length l)

let test_query_descendant () =
  let d = sample_delta () in
  (match Q.query "S[ins]" d with
  | Ok [ p ] -> Alcotest.(check string) "found the inserted sentence" "fresh" p.Q.node.Delta.value
  | Ok l -> Alcotest.failf "expected 1 result, got %d" (List.length l)
  | Error e -> Alcotest.fail e);
  match Q.query "D//S" d with
  | Ok l ->
    Alcotest.(check int) "descendant finds all sentences incl. ghosts"
      (Q.count ~label:"S" d) (List.length l)
  | Error e -> Alcotest.fail e

let test_query_child_vs_descendant () =
  let d = sample_delta () in
  (* sentences are not direct children of the document *)
  (match Q.query "D/S" d with
  | Ok l -> Alcotest.(check int) "child axis strict" 0 (List.length l)
  | Error e -> Alcotest.fail e);
  match Q.query "D/P/S" d with
  | Ok l -> Alcotest.(check bool) "chained child axis" true (List.length l > 0)
  | Error e -> Alcotest.fail e

let test_query_star_and_changed () =
  let d = sample_delta () in
  (match Q.query "*[changed]" d with
  | Ok l -> Alcotest.(check int) "same as combinator" (Q.count ~kind:Q.Changed d) (List.length l)
  | Error e -> Alcotest.fail e);
  match Q.query "P//*[mov]" d with
  | Ok l ->
    List.iter
      (fun (p : Q.path) ->
        Alcotest.(check bool) "moved under a paragraph" true (p.Q.node.Delta.moved <> None))
      l
  | Error e -> Alcotest.fail e

let test_query_errors () =
  let d = sample_delta () in
  let bad s =
    match Q.query s d with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty selector" true (bad "");
  Alcotest.(check bool) "unknown kind" true (bad "S[banana]");
  Alcotest.(check bool) "empty step" true (bad "S//");
  Alcotest.(check bool) "missing bracket" true (bad "S[ins");
  Alcotest.check_raises "query_exn raises"
    (Invalid_argument "Delta_query.query: unknown kind \"banana\" (ins|del|upd|mov|mrk|idn|changed)")
    (fun () -> ignore (Q.query_exn "S[banana]" d))

let test_query_preserves_order () =
  let d = sample_delta () in
  match Q.query "//S" d with
  | Ok paths ->
    (* document order: alpha/beta appear before gamma/delta in the new tree *)
    let values = List.map (fun (p : Q.path) -> p.Q.node.Delta.value) paths in
    let idx v =
      let rec find i = function
        | [] -> -1
        | x :: rest -> if x = v then i else find (i + 1) rest
      in
      find 0 values
    in
    Alcotest.(check bool) "alpha before gamma" true (idx "alpha" < idx "gamma")
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "delta-query"
    [
      ( "combinators",
        [
          Alcotest.test_case "select by kind" `Quick test_select_by_kind;
          Alcotest.test_case "select by label" `Quick test_select_by_label;
          Alcotest.test_case "changed and fold" `Quick test_changed_and_fold;
          Alcotest.test_case "path string" `Quick test_path_string;
        ] );
      ( "selector-syntax",
        [
          Alcotest.test_case "descendant axis" `Quick test_query_descendant;
          Alcotest.test_case "child vs descendant" `Quick test_query_child_vs_descendant;
          Alcotest.test_case "star and changed" `Quick test_query_star_and_changed;
          Alcotest.test_case "errors" `Quick test_query_errors;
          Alcotest.test_case "document order" `Quick test_query_preserves_order;
        ] );
    ]
