(* Helpers shared across the test executables. *)

let structural_lower_bound = Treediff_experiments.Optimality.structural_lower_bound
