(* Tests for Treediff_lcs: Myers O(ND) LCS vs the DP oracle, plus Subseq. *)

module Myers = Treediff_lcs.Myers
module Dp = Treediff_lcs.Dp
module Subseq = Treediff_lcs.Subseq

let ieq = Int.equal

let lcs_values a b =
  List.map (fun (i, j) -> (a.(i), b.(j))) (Myers.lcs ~equal:ieq a b)

let test_known_cases () =
  let check_len name a b expected =
    Alcotest.(check int) name expected (Myers.lcs_length ~equal:ieq a b)
  in
  check_len "identical" [| 1; 2; 3 |] [| 1; 2; 3 |] 3;
  check_len "disjoint" [| 1; 2; 3 |] [| 4; 5; 6 |] 0;
  check_len "classic" [| 1; 2; 3; 4; 5 |] [| 3; 4; 1; 2; 5 |] 3;
  check_len "empty left" [||] [| 1 |] 0;
  check_len "empty right" [| 1 |] [||] 0;
  check_len "both empty" [||] [||] 0;
  check_len "single match" [| 7 |] [| 7 |] 1;
  check_len "prefix" [| 1; 2 |] [| 1; 2; 3; 4 |] 2;
  check_len "suffix" [| 3; 4 |] [| 1; 2; 3; 4 |] 2;
  check_len "repeated" [| 1; 1; 1 |] [| 1; 1 |] 2

let test_pairs_are_matches () =
  let a = [| 1; 2; 3; 2; 1 |] and b = [| 2; 1; 2; 3 |] in
  let pairs = Myers.lcs ~equal:ieq a b in
  List.iter (fun (i, j) -> Alcotest.(check int) "values equal" a.(i) b.(j)) pairs

let test_strings () =
  let a = [| "the"; "quick"; "brown"; "fox" |] in
  let b = [| "the"; "brown"; "dog" |] in
  Alcotest.(check int) "string lcs" 2 (Myers.lcs_length ~equal:String.equal a b);
  Alcotest.(check int) "edit distance" 3 (Myers.edit_distance ~equal:String.equal a b)

let test_custom_equality () =
  (* LCS with a non-trivial equality: case-insensitive, the reason the paper
     cannot use the stock diff (needs equality-only comparisons). *)
  let equal a b = String.lowercase_ascii a = String.lowercase_ascii b in
  let a = [| "A"; "b"; "C" |] and b = [| "a"; "B"; "c" |] in
  Alcotest.(check int) "case-insensitive lcs" 3 (Myers.lcs_length ~equal a b)

let test_lcs_values () =
  (* Two optimal answers exist ([1;2] or [9;9;9]-crossing is impossible —
     it must pick one side); either way length is bounded by the oracle. *)
  let a = [| 9; 9; 9; 1; 2 |] and b = [| 1; 2; 9; 9; 9 |] in
  let vals = lcs_values a b in
  Alcotest.(check int) "interleaved length" 3 (List.length vals);
  List.iter (fun (x, y) -> Alcotest.(check int) "pair equal" x y) vals

(* Myers length equals DP-oracle length on random inputs. *)
let myers_vs_dp_prop =
  QCheck2.Test.make ~name:"myers length = dp length" ~count:1000
    QCheck2.Gen.(
      pair
        (pair (list (int_bound 5)) (list (int_bound 5)))
        (int_range 1 6))
    (fun ((la, lb), _alpha) ->
      let a = Array.of_list la and b = Array.of_list lb in
      Myers.lcs_length ~equal:ieq a b = Dp.lcs_length ~equal:ieq a b)

(* The result is a strictly increasing common subsequence. *)
let myers_increasing_prop =
  QCheck2.Test.make ~name:"myers pairs strictly increasing and valid" ~count:1000
    QCheck2.Gen.(pair (list (int_bound 4)) (list (int_bound 4)))
    (fun (la, lb) ->
      let a = Array.of_list la and b = Array.of_list lb in
      let pairs = Myers.lcs ~equal:ieq a b in
      let rec ok prev = function
        | [] -> true
        | (i, j) :: rest ->
          i >= 0 && i < Array.length a && j >= 0 && j < Array.length b
          && a.(i) = b.(j)
          && (match prev with Some (pi, pj) -> i > pi && j > pj | None -> true)
          && ok (Some (i, j)) rest
      in
      ok None pairs)

(* DP's own backtrack agrees with its table. *)
let dp_consistency_prop =
  QCheck2.Test.make ~name:"dp pairs length equals dp length" ~count:500
    QCheck2.Gen.(pair (list (int_bound 3)) (list (int_bound 3)))
    (fun (la, lb) ->
      let a = Array.of_list la and b = Array.of_list lb in
      List.length (Dp.lcs ~equal:ieq a b) = Dp.lcs_length ~equal:ieq a b)

(* ---------------------------------------------------------------- Subseq *)

let test_subseq_known () =
  let items = Subseq.diff ~equal:ieq [| 1; 2; 3 |] [| 2; 3; 4 |] in
  Alcotest.(check bool) "starts with del" true
    (match items with Subseq.Del 0 :: _ -> true | _ -> false);
  let k, d, i = Subseq.counts items in
  Alcotest.(check (list int)) "counts" [ 2; 1; 1 ] [ k; d; i ]

(* Every index of both arrays appears exactly once, in order. *)
let subseq_coverage_prop =
  QCheck2.Test.make ~name:"subseq covers all indices in order" ~count:500
    QCheck2.Gen.(pair (list (int_bound 4)) (list (int_bound 4)))
    (fun (la, lb) ->
      let a = Array.of_list la and b = Array.of_list lb in
      let items = Subseq.diff ~equal:ieq a b in
      let ai = ref 0 and bi = ref 0 and ok = ref true in
      List.iter
        (fun item ->
          match item with
          | Subseq.Keep (i, j) ->
            if i <> !ai || j <> !bi then ok := false;
            incr ai;
            incr bi
          | Subseq.Del i ->
            if i <> !ai then ok := false;
            incr ai
          | Subseq.Ins j ->
            if j <> !bi then ok := false;
            incr bi)
        items;
      !ok && !ai = Array.length a && !bi = Array.length b)

(* Keeps in a Subseq.diff = LCS length. *)
let subseq_keeps_prop =
  QCheck2.Test.make ~name:"subseq keeps equal lcs length" ~count:500
    QCheck2.Gen.(pair (list (int_bound 4)) (list (int_bound 4)))
    (fun (la, lb) ->
      let a = Array.of_list la and b = Array.of_list lb in
      let k, _, _ = Subseq.counts (Subseq.diff ~equal:ieq a b) in
      k = Myers.lcs_length ~equal:ieq a b)

let () =
  Alcotest.run "lcs"
    [
      ( "myers",
        [
          Alcotest.test_case "known cases" `Quick test_known_cases;
          Alcotest.test_case "pairs are matches" `Quick test_pairs_are_matches;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "custom equality" `Quick test_custom_equality;
          Alcotest.test_case "lcs values" `Quick test_lcs_values;
          QCheck_alcotest.to_alcotest myers_vs_dp_prop;
          QCheck_alcotest.to_alcotest myers_increasing_prop;
          QCheck_alcotest.to_alcotest dp_consistency_prop;
        ] );
      ( "subseq",
        [
          Alcotest.test_case "known diff" `Quick test_subseq_known;
          QCheck_alcotest.to_alcotest subseq_coverage_prop;
          QCheck_alcotest.to_alcotest subseq_keeps_prop;
        ] );
    ]
