(* Tests for Treediff_tree: Node operations, traversals, Tree utilities,
   Iso, Invariant, and the Codec round-trip. *)

module Node = Treediff_tree.Node
module Tree = Treediff_tree.Tree
module Iso = Treediff_tree.Iso
module Codec = Treediff_tree.Codec
module Invariant = Treediff_tree.Invariant
module P = Treediff_util.Prng

let sample () =
  (* D(1) [ P(2) [S(3) "a", S(4) "b"], P(5) [S(6) "c"] ] — built with
     explicit ids since constructor-argument evaluation order would otherwise
     decide them. *)
  let mk id label value = Node.make ~id ~label ~value () in
  let d = mk 1 "D" "" in
  let p1 = mk 2 "P" "" and s_a = mk 3 "S" "a" and s_b = mk 4 "S" "b" in
  let p2 = mk 5 "P" "" and s_c = mk 6 "S" "c" in
  Node.append_child d p1;
  Node.append_child p1 s_a;
  Node.append_child p1 s_b;
  Node.append_child d p2;
  Node.append_child p2 s_c;
  d

let ids order = List.map (fun (n : Node.t) -> n.Node.id) order

let test_construction () =
  let t = sample () in
  Alcotest.(check int) "size" 6 (Node.size t);
  Alcotest.(check int) "leaf count" 3 (Node.leaf_count t);
  Alcotest.(check int) "height" 2 (Node.height t);
  Alcotest.(check int) "root depth" 0 (Node.depth t);
  Alcotest.(check int) "leaf depth" 2 (Node.depth (Node.child (Node.child t 0) 0));
  Alcotest.(check bool) "root is root" true (Node.is_root t);
  Alcotest.(check bool) "leaf is leaf" true (Node.is_leaf (Node.child (Node.child t 0) 1));
  Invariant.check_exn t

let test_traversals () =
  let t = sample () in
  Alcotest.(check (list int)) "preorder" [ 1; 2; 3; 4; 5; 6 ] (ids (Node.preorder t));
  Alcotest.(check (list int)) "postorder" [ 3; 4; 2; 6; 5; 1 ] (ids (Node.postorder t));
  Alcotest.(check (list int)) "bfs" [ 1; 2; 5; 3; 4; 6 ] (ids (Node.bfs t));
  Alcotest.(check (list int)) "leaves" [ 3; 4; 6 ] (ids (Node.leaves t))

let test_child_ops () =
  let t = sample () in
  let p1 = Node.child t 0 in
  let s_b = Node.child p1 1 in
  Alcotest.(check int) "child_index" 1 (Node.child_index s_b);
  Node.detach s_b;
  Alcotest.(check int) "after detach arity" 1 (Node.child_count p1);
  Alcotest.(check bool) "detached is root" true (Node.is_root s_b);
  Node.detach s_b;
  (* detaching a root is a no-op *)
  let p2 = Node.child t 1 in
  Node.insert_child p2 0 s_b;
  Alcotest.(check (list int)) "insert front" [ 4; 6 ] (ids (Node.children p2));
  Invariant.check_exn t;
  Alcotest.check_raises "double attach"
    (Invalid_argument "Node.insert_child: child is already attached") (fun () ->
      Node.insert_child p1 0 s_b)

let test_ancestry () =
  let t = sample () in
  let p1 = Node.child t 0 in
  let s_a = Node.child p1 0 in
  Alcotest.(check bool) "root is ancestor" true (Node.is_ancestor t s_a);
  Alcotest.(check bool) "parent is ancestor" true (Node.is_ancestor p1 s_a);
  Alcotest.(check bool) "self not ancestor" false (Node.is_ancestor s_a s_a);
  Alcotest.(check bool) "descendant not ancestor" false (Node.is_ancestor s_a t);
  Alcotest.(check int) "root of leaf" t.Node.id (Node.root s_a).Node.id

let test_copy_preserves () =
  let t = sample () in
  let c = Tree.copy t in
  Alcotest.(check bool) "copy isomorphic" true (Iso.equal t c);
  Alcotest.(check (list int)) "copy preserves ids" (ids (Node.preorder t))
    (ids (Node.preorder c));
  (* mutation of copy leaves the original intact *)
  (Node.child (Node.child c 0) 0).Node.value <- "changed";
  Alcotest.(check string) "original untouched" "a"
    (Node.child (Node.child t 0) 0).Node.value

let test_relabel_ids () =
  let gen = Tree.gen () in
  let t = Tree.node gen "D" [ Tree.leaf gen "S" "x" ] in
  let t2 = Tree.relabel_ids gen t in
  Alcotest.(check bool) "isomorphic after relabel" true (Iso.equal t t2);
  let ids1 = ids (Node.preorder t) and ids2 = ids (Node.preorder t2) in
  Alcotest.(check bool) "ids disjoint" true
    (List.for_all (fun i -> not (List.mem i ids1)) ids2)

let test_index_and_find () =
  let t = sample () in
  let idx = Tree.index_by_id t in
  Alcotest.(check int) "index size" 6 (Hashtbl.length idx);
  Alcotest.(check string) "find value" "c"
    (match Tree.find_by_id t 6 with Some n -> n.Node.value | None -> "?");
  Alcotest.(check bool) "find missing" true (Tree.find_by_id t 99 = None);
  Alcotest.(check int) "max id" 6 (Tree.max_id t)

let test_iso_differences () =
  let gen = Tree.gen () in
  let t1 = Tree.node gen "D" [ Tree.leaf gen "S" "a" ] in
  let t2 = Tree.node gen "D" [ Tree.leaf gen "S" "b" ] in
  let t3 = Tree.node gen "D" [ Tree.leaf gen "S" "a"; Tree.leaf gen "S" "a" ] in
  let t4 = Tree.node gen "E" [ Tree.leaf gen "S" "a" ] in
  Alcotest.(check bool) "value diff" false (Iso.equal t1 t2);
  Alcotest.(check bool) "arity diff" false (Iso.equal t1 t3);
  Alcotest.(check bool) "label diff" false (Iso.equal t1 t4);
  Alcotest.(check bool) "diagnostic present" true (Iso.first_difference t1 t2 <> None);
  Alcotest.(check bool) "no diagnostic when equal" true
    (Iso.first_difference t1 (Tree.copy t1) = None)

(* ----------------------------------------------------------------- codec *)

let test_codec_parse () =
  let gen = Tree.gen () in
  let t = Codec.parse gen {|(D (P (S "a b") (S "c\"d")) (P))|} in
  Alcotest.(check string) "root label" "D" t.Node.label;
  Alcotest.(check int) "children" 2 (Node.child_count t);
  Alcotest.(check string) "escaped quote" "c\"d"
    (Node.child (Node.child t 0) 1).Node.value;
  Alcotest.(check bool) "empty internal node" true (Node.is_leaf (Node.child t 1))

let test_codec_errors () =
  let gen = Tree.gen () in
  let expect_fail src =
    match Codec.parse gen src with
    | exception Codec.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  expect_fail "";
  expect_fail "(";
  expect_fail "(D";
  expect_fail "(D))";
  expect_fail "()";
  expect_fail {|(D "unclosed)|};
  expect_fail "(D (P)) trailing"

let rec random_tree g gen depth =
  let label = P.pick g [| "A"; "B"; "C" |] in
  let value =
    if P.bool g then "" else Printf.sprintf "v %d \"quoted\" \\ %d" (P.int g 10) (P.int g 10)
  in
  let n = if depth >= 3 then 0 else P.int g 4 in
  Tree.node gen label ~value (List.init n (fun _ -> random_tree g gen (depth + 1)))

let codec_roundtrip_prop =
  QCheck2.Test.make ~name:"codec print/parse round-trip" ~count:300
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t = random_tree g gen 0 in
      let printed = Codec.to_string t in
      let t' = Codec.parse (Tree.gen ()) printed in
      Iso.equal t t'
      &&
      (* compact form round-trips too *)
      let compact = Codec.to_string ~indent:false t in
      Iso.equal t (Codec.parse (Tree.gen ()) compact))

let invariant_detects_breakage =
  QCheck2.Test.make ~name:"invariant accepts generated trees" ~count:200
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = P.create seed in
      let gen = Tree.gen () in
      let t = random_tree g gen 0 in
      Invariant.check t = Ok ())

let test_invariant_violation () =
  let gen = Tree.gen () in
  let t = Tree.node gen "D" [ Tree.leaf gen "S" "x" ] in
  let child = Node.child t 0 in
  child.Node.parent <- None;
  (* corrupt the back-pointer *)
  Alcotest.(check bool) "detects broken parent pointer" true (Invariant.check t <> Ok ())

let () =
  Alcotest.run "tree"
    [
      ( "node",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "traversals" `Quick test_traversals;
          Alcotest.test_case "child operations" `Quick test_child_ops;
          Alcotest.test_case "ancestry" `Quick test_ancestry;
        ] );
      ( "tree",
        [
          Alcotest.test_case "copy preserves structure+ids" `Quick test_copy_preserves;
          Alcotest.test_case "relabel ids" `Quick test_relabel_ids;
          Alcotest.test_case "index and find" `Quick test_index_and_find;
        ] );
      ( "iso",
        [ Alcotest.test_case "differences detected" `Quick test_iso_differences ] );
      ( "codec",
        [
          Alcotest.test_case "parse" `Quick test_codec_parse;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          QCheck_alcotest.to_alcotest codec_roundtrip_prop;
        ] );
      ( "invariant",
        [
          QCheck_alcotest.to_alcotest invariant_detects_breakage;
          Alcotest.test_case "violation detected" `Quick test_invariant_violation;
        ] );
    ]
