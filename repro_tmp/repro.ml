module Tree = Treediff_tree.Tree
module Codec = Treediff_tree.Codec
module Op = Treediff_edit.Op
module Script = Treediff_edit.Script
module Depgraph = Treediff_check.Depgraph
module Diag = Treediff_check.Diag

(* Post-order ids: x=1 A=2 B=3 C=4 D=5 *)
let () =
  let gen = Tree.gen () in
  let t = Codec.parse gen {|(D (A (S "x")) (B) (C))|} in
  let script =
    [
      Op.Move { id = 1; parent = 3; pos = 1 };  (* MOV x: A -> B *)
      Op.Delete { id = 2 };                     (* DEL A (now a leaf) *)
      Op.Move { id = 1; parent = 4; pos = 1 };  (* MOV x: B -> C *)
    ]
  in
  (* original script is valid? *)
  (match Script.apply_result (Tree.copy t) script with
   | Ok t' -> Printf.printf "original applies: %s\n" (Codec.to_string ~indent:false t')
   | Error m -> Printf.printf "original INVALID: %s\n" m);
  let g = Depgraph.build ~tree:t script in
  let dead = Depgraph.audit ~dead:true ~tree:t script in
  List.iter (fun d -> Printf.printf "diag: %s\n" (Diag.to_string d)) dead;
  ignore g;
  let norm = Depgraph.normalize ~tree:t script in
  Printf.printf "normalized (%d ops):\n%s" (List.length norm)
    (Treediff_edit.Script_io.to_string norm);
  (match Script.apply_result (Tree.copy t) norm with
   | Ok t' -> Printf.printf "normalized applies: %s\n" (Codec.to_string ~indent:false t')
   | Error m -> Printf.printf "normalized INVALID: %s\n" m);
  (match Depgraph.equivalent ~tree:t script norm with
   | Ok () -> Printf.printf "equivalent: yes\n"
   | Error m -> Printf.printf "equivalent: NO (%s)\n" m)
