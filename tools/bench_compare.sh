#!/bin/sh
# Compare two BENCH_*.json trajectory files and fail on regressions.
#
#   tools/bench_compare.sh OLD.json NEW.json [--max-regress PCT] [--only RE]
#
# Both files use the bench harness schema: a "results" array of
# { "name": ..., "ns_per_run": ... } rows (plus a provenance header with
# the git rev and core count, printed here for context).  Benchmarks are
# joined by name; a shared name whose ns/run grew by more than PCT percent
# (default 10) is a regression and the script exits 1.  Names present in
# only one file are listed but never fail the comparison — benches come
# and go across PRs.
#
# --only RE restricts the comparison to benchmark names matching the awk
# regular expression RE — e.g. --only 'serve/.*-p99' gates the service
# load test on tail latency alone, ignoring the noisier p50/throughput
# rows in the same file.
set -eu

max_regress=10
only=
old= new=
for arg in "$@"; do
  case $arg in
    --max-regress) max_regress=__next__ ;;
    --max-regress=*) max_regress=${arg#--max-regress=} ;;
    --only) only=__next__ ;;
    --only=*) only=${arg#--only=} ;;
    *)
      if [ "$max_regress" = __next__ ]; then max_regress=$arg
      elif [ "$only" = __next__ ]; then only=$arg
      elif [ -z "$old" ]; then old=$arg
      elif [ -z "$new" ]; then new=$arg
      else echo "bench_compare: unexpected argument $arg" >&2; exit 2
      fi ;;
  esac
done
if [ -z "$old" ] || [ -z "$new" ] || [ "$max_regress" = __next__ ] \
   || [ "$only" = __next__ ]; then
  echo "usage: tools/bench_compare.sh OLD.json NEW.json [--max-regress PCT] [--only RE]" >&2
  exit 2
fi
for f in "$old" "$new"; do
  [ -f "$f" ] || { echo "bench_compare: no such file: $f" >&2; exit 2; }
done

# One "name value" line per benchmark row (the harness emits one row per
# line, so line-oriented extraction is reliable without a JSON parser).
extract() {
  awk -v pat="$only" 'match($0, /"name": *"[^"]*", *"ns_per_run": *[0-9.null][0-9.]*/) {
    s = substr($0, RSTART, RLENGTH)
    sub(/^"name": *"/, "", s)
    name = s; sub(/".*/, "", name)
    val = s; sub(/.*"ns_per_run": */, "", val)
    if (val != "null" && (pat == "" || name ~ pat)) print name, val
  }' "$1"
}

header() {
  awk -v f="$1" '
    /"git":/   { gsub(/.*"git": *"|".*/, ""); git = $0 }
    /"cores":/ { gsub(/[^0-9]/, ""); cores = $0 }
    /"results":/ { exit }
    END { printf "%s: git %s, %s core(s)\n", f, (git ? git : "?"), (cores ? cores : "?") }
  ' "$1"
}

header "$old"
header "$new"

extract "$old" > "${TMPDIR:-/tmp}/bench_old.$$"
extract "$new" > "${TMPDIR:-/tmp}/bench_new.$$"
trap 'rm -f "${TMPDIR:-/tmp}/bench_old.$$" "${TMPDIR:-/tmp}/bench_new.$$"' EXIT

awk -v max="$max_regress" '
  NR == FNR { old[$1] = $2; next }
  { new_[$1] = $2 }
  END {
    worst = 0; fails = 0; shared = 0
    printf "%-48s %12s %12s %9s\n", "benchmark", "old ns/run", "new ns/run", "delta"
    for (n in new_) {
      if (n in old) {
        shared++
        d = (new_[n] - old[n]) / old[n] * 100
        flag = (d > max) ? "  REGRESSED" : ""
        if (d > max) fails++
        if (d > worst) worst = d
        printf "%-48s %12.0f %12.0f %+8.1f%%%s\n", n, old[n], new_[n], d, flag
      } else printf "%-48s %12s %12.0f     (new)\n", n, "-", new_[n]
    }
    for (n in old) if (!(n in new_))
      printf "%-48s %12.0f %12s  (removed)\n", n, old[n], "-"
    if (shared == 0) { print "bench_compare: no shared benchmark names" ; exit 2 }
    if (fails > 0) {
      printf "bench_compare: %d benchmark(s) regressed more than %s%% (worst %+.1f%%)\n", fails, max, worst
      exit 1
    }
    printf "bench_compare: ok — %d shared benchmark(s), none above %s%% (worst %+.1f%%)\n", shared, max, worst
  }' "${TMPDIR:-/tmp}/bench_old.$$" "${TMPDIR:-/tmp}/bench_new.$$"
