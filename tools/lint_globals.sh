#!/bin/sh
# Source hygiene lints over lib/.  Each @lint rule greps for a forbidden
# pattern; hits are filtered through `tools/lint_globals.allow` (one
# literal line fragment per entry, `#` comments allowed) before failing.
set -eu
root=${1:-.}
allow="$root/tools/lint_globals.allow"
status=0

filter_allowed() {
  hits=$1
  if [ -f "$allow" ]; then
    while IFS= read -r pat; do
      case $pat in ''|'#'*) continue ;; esac
      hits=$(printf '%s\n' "$hits" | grep -v -F "$pat" || true)
    done < "$allow"
  fi
  printf '%s\n' "$hits" | sed '/^$/d'
}

# @lint no-module-level-mutable-state
# A top-level `let x = ref ...` or `let x = Hashtbl.create ...` is ambient
# per-process state: it breaks re-entrancy and domain-parallel batch runs.
# All such state now lives in Treediff_util.Exec contexts.  Function-local
# mutable state (indented) is fine and not matched.
bad=$(grep -rn -E '^let [^=]*= *(ref |ref$|Hashtbl\.create)' "$root/lib" --include='*.ml' || true)
bad=$(filter_allowed "$bad")
if [ -n "$bad" ]; then
  echo 'lint_globals: module-level mutable state in lib/ (thread a Treediff_util.Exec instead):' >&2
  printf '%s\n' "$bad" >&2
  status=1
fi

# @lint no-catch-all-handlers
# A `try ... with _ ->` handler swallows Budget.Exceeded, Fault.Injected
# and Diag.Failed alike, silently converting typed degradation and
# injected faults into wrong answers.  Catch the specific exceptions the
# expression can raise; a genuine catch-all belongs behind an allow entry
# with a justification comment next to it.
bad=$(grep -rn -E 'with[[:space:]]+_[[:space:]]*(->|$)' "$root/lib" --include='*.ml' || true)
bad=$(filter_allowed "$bad")
if [ -n "$bad" ]; then
  echo 'lint_globals: catch-all "try ... with _ ->" handler in lib/ (match the specific exceptions instead):' >&2
  printf '%s\n' "$bad" >&2
  status=1
fi

if [ "$status" -ne 0 ]; then exit "$status"; fi
echo 'lint_globals: ok'
