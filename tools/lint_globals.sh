#!/bin/sh
# Fail on new module-level mutable state in lib/.
#
# A top-level `let x = ref ...` or `let x = Hashtbl.create ...` is ambient
# per-process state: it breaks re-entrancy and domain-parallel batch runs.
# All such state now lives in Treediff_util.Exec contexts (or, for the rare
# legitimate global, in `tools/lint_globals.allow` — one literal line
# fragment per entry, `#` comments allowed).  Function-local mutable state
# (indented) is fine and not matched.
set -eu
root=${1:-.}
allow="$root/tools/lint_globals.allow"
bad=$(grep -rn -E '^let [^=]*= *(ref |ref$|Hashtbl\.create)' "$root/lib" --include='*.ml' || true)
if [ -f "$allow" ]; then
  while IFS= read -r pat; do
    case $pat in ''|'#'*) continue ;; esac
    bad=$(printf '%s\n' "$bad" | grep -v -F "$pat" || true)
  done < "$allow"
fi
bad=$(printf '%s\n' "$bad" | sed '/^$/d')
if [ -n "$bad" ]; then
  echo 'lint_globals: module-level mutable state in lib/ (thread a Treediff_util.Exec instead):' >&2
  printf '%s\n' "$bad" >&2
  exit 1
fi
echo 'lint_globals: ok'
