#!/bin/sh
# Source hygiene lints over lib/.  Each @lint rule greps for a forbidden
# pattern; hits are filtered through `tools/lint_globals.allow` (one
# literal line fragment per entry, `#` comments allowed) before failing.
set -eu
root=${1:-.}
allow="$root/tools/lint_globals.allow"
status=0

filter_allowed() {
  hits=$1
  if [ -f "$allow" ]; then
    while IFS= read -r pat; do
      case $pat in ''|'#'*) continue ;; esac
      hits=$(printf '%s\n' "$hits" | grep -v -F "$pat" || true)
    done < "$allow"
  fi
  printf '%s\n' "$hits" | sed '/^$/d'
}

# @lint no-module-level-mutable-state
# A top-level `let x = ref ...` or `let x = Hashtbl.create ...` is ambient
# per-process state: it breaks re-entrancy and domain-parallel batch runs.
# All such state now lives in Treediff_util.Exec contexts.  Function-local
# mutable state (indented) is fine and not matched.
bad=$(grep -rn -E '^let [^=]*= *(ref |ref$|Hashtbl\.create)' "$root/lib" --include='*.ml' || true)
bad=$(filter_allowed "$bad")
if [ -n "$bad" ]; then
  echo 'lint_globals: module-level mutable state in lib/ (thread a Treediff_util.Exec instead):' >&2
  printf '%s\n' "$bad" >&2
  status=1
fi

# @lint no-catch-all-handlers
# A `try ... with _ ->` handler swallows Budget.Exceeded, Fault.Injected
# and Diag.Failed alike, silently converting typed degradation and
# injected faults into wrong answers.  Catch the specific exceptions the
# expression can raise; a genuine catch-all belongs behind an allow entry
# with a justification comment next to it.
bad=$(grep -rn -E 'with[[:space:]]+_[[:space:]]*(->|$)' "$root/lib" --include='*.ml' || true)
bad=$(filter_allowed "$bad")
if [ -n "$bad" ]; then
  echo 'lint_globals: catch-all "try ... with _ ->" handler in lib/ (match the specific exceptions instead):' >&2
  printf '%s\n' "$bad" >&2
  status=1
fi

# @lint no-direct-parser-calls
# Every parse must resolve through the Treediff_doc.Format registry so the
# supported set, unknown-format errors and lenient behaviour stay identical
# across the CLI, ladiff, the serve daemon and the store ingest path.
# Calling an individual parser's parse/parse_result directly (outside
# lib/doc, where the registry itself lives) reintroduces the per-entry-point
# drift the registry exists to prevent.
bad=$(grep -rn -E '(Xml|Latex|Html|Json|Markdown)_parser\.parse' \
        "$root/lib" "$root/bin" "$root/examples" --include='*.ml' \
      | grep -v '/lib/doc/' || true)
bad=$(filter_allowed "$bad")
if [ -n "$bad" ]; then
  echo 'lint_globals: direct parser call outside lib/doc (resolve the format through Treediff_doc.Format instead):' >&2
  printf '%s\n' "$bad" >&2
  status=1
fi

if [ "$status" -ne 0 ]; then exit "$status"; fi
echo 'lint_globals: ok'
