(* The LaDiff command-line tool (§7): compare two versions of a LaTeX (or
   HTML) document and emit a marked-up document highlighting the changes. *)

open Cmdliner

(* The marked-document output modes are named after the document formats
   they emit; take the names from the registry rather than repeating them. *)
let fmt_name (f : Treediff_doc.Format.t) = f.Treediff_doc.Format.name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes, also documented in the man page: 2 = parse error,
   4 = internal diagnostic failure. *)
let exit_parse_error = 2
let exit_internal = 4

let run old_file new_file format lenient threshold leaf_f output mode check =
  try
  let config =
    Treediff_doc.Doc_tree.config_with ~leaf_f ~internal_t:threshold ()
  in
  let old_src = read_file old_file and new_src = read_file new_file in
  let out = Treediff_doc.Ladiff.run ~format ~lenient ~config ~old_src ~new_src () in
  List.iter
    (fun w -> Printf.eprintf "ladiff: warning: %s\n" w)
    out.Treediff_doc.Ladiff.warnings;
  let result = out.Treediff_doc.Ladiff.result in
  (if check then
     match
       Treediff.Diff.check result ~t1:out.Treediff_doc.Ladiff.old_tree
         ~t2:out.Treediff_doc.Ladiff.new_tree
     with
     | Ok () -> prerr_endline "check: edit script transforms old tree into new tree"
     | Error e -> failwith ("check failed: " ^ e));
  (* Table 2 mark-up only exists on the document schema; refuse early with
     the capability flag instead of crashing in the renderer. *)
  let require_schema m =
    if not format.Treediff_doc.Format.caps.Treediff_doc.Format.document_schema
    then
      failwith
        (Printf.sprintf
           "mode %s needs a document-schema format; %s is a generic tree \
            format — use -m text, script, side-by-side or prose"
           m format.Treediff_doc.Format.name)
  in
  let text =
    match mode with
    | m when String.equal m (fmt_name Treediff_doc.Format.latex) ->
      require_schema m;
      Lazy.force out.Treediff_doc.Ladiff.marked_latex
    | m when String.equal m (fmt_name Treediff_doc.Format.html) ->
      require_schema m;
      Treediff_doc.Html_markup.to_html ~full_page:true
        ~title:(Filename.basename new_file) result.Treediff.Diff.delta
    | "text" -> out.Treediff_doc.Ladiff.marked_text
    | "script" -> Treediff_edit.Script_io.to_string result.Treediff.Diff.script
    | "summary" ->
      Treediff_doc.Markup.summary result.Treediff.Diff.delta ^ "\n"
    | "side-by-side" ->
      Treediff_doc.Render_align.render result.Treediff.Diff.delta
    | "prose" ->
      Treediff_doc.Render_summary.render result.Treediff.Diff.delta
    | m ->
      failwith
        (Printf.sprintf
           "unknown output mode %S \
            (latex|html|text|script|summary|side-by-side|prose)" m)
  in
  (match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text))
  with
  | Treediff_doc.Format.Parse_error m ->
    Printf.eprintf "ladiff: parse error: %s\n" m;
    exit exit_parse_error
  | Failure m ->
    Printf.eprintf "ladiff: %s\n" m;
    exit exit_internal
  | Treediff_check.Diag.Failed ds ->
    List.iter
      (fun d -> prerr_endline (Treediff_check.Diag.to_string d))
      ds;
    exit exit_internal

let old_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Old version.")

let new_file =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"New version.")

let format_conv =
  let parse s =
    match Treediff_doc.Format.find s with
    | Ok f -> Ok f
    | Error m -> Error (`Msg m)
  in
  let print ppf (f : Treediff_doc.Format.t) =
    Stdlib.Format.pp_print_string ppf f.Treediff_doc.Format.name
  in
  Arg.conv ~docv:"FMT" (parse, print)

let format =
  let doc =
    "Input format, any registered tree format: "
    ^ String.concat ", "
        (List.map
           (fun (f : Treediff_doc.Format.t) ->
             Printf.sprintf "$(b,%s)" f.Treediff_doc.Format.name)
           Treediff_doc.Format.all)
    ^ ".  Document-schema formats get the full mark-up; generic trees \
       render best with $(b,-m text), $(b,-m side-by-side) or $(b,-m prose)."
  in
  Arg.(value & opt format_conv Treediff_doc.Format.latex
       & info [ "f"; "format" ] ~docv:"FMT" ~doc)

let lenient =
  Arg.(value & flag & info [ "lenient" ]
         ~doc:"Recover from malformed input instead of failing: each \
               recovery (unbalanced braces, stray \\\\item, tag soup) is \
               reported as a warning on stderr and parsing continues.")

let threshold =
  Arg.(value & opt float 0.6 & info [ "t"; "threshold" ] ~docv:"T"
         ~doc:"Match threshold t for internal nodes (1/2 <= t <= 1), §5.1.")

let leaf_f =
  Arg.(value & opt float 0.5 & info [ "leaf-threshold" ] ~docv:"F"
         ~doc:"Leaf distance threshold f (0 <= f <= 1), Matching Criterion 1.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the result to $(docv) instead of stdout.")

let mode =
  Arg.(value & opt string (fmt_name Treediff_doc.Format.latex)
       & info [ "m"; "mode" ] ~docv:"MODE"
         ~doc:"Output mode: $(b,latex) (marked-up document), $(b,html) (marked-up web \
               page), $(b,text) (annotated tree), $(b,script) (edit script), \
               $(b,summary) (change tally), $(b,side-by-side) (aligned \
               two-column view), $(b,prose) (natural-language change \
               summary).")

let check =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Verify that the edit script transforms the old tree into the new one.")

let cmd =
  let doc = "detect and mark changes between two structured-document versions" in
  let man =
    [
      `S Manpage.s_description;
      `P "LaDiff parses two versions of a LaTeX (or HTML) document, computes a \
          minimum-cost edit script between their trees (Chawathe, Rajaraman, \
          Garcia-Molina & Widom, SIGMOD 1996), and emits the new version marked \
          up with the changes: inserted sentences in bold, deleted in small \
          font, updates in italics, moves labelled and footnoted.";
    ]
  in
  let exits =
    Cmd.Exit.info ~doc:"on malformed input (parse error)." exit_parse_error
    :: Cmd.Exit.info ~doc:"on an internal diagnostic failure." exit_internal
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "ladiff" ~version:"1.0.0" ~doc ~man ~exits)
    Term.(const run $ old_file $ new_file $ format $ lenient $ threshold $ leaf_f
          $ output $ mode $ check)

(* A closed downstream ([ladiff … | head]) is a normal way to stop consuming
   output: SIGPIPE is ignored so the write surfaces as
   [Sys_error "Broken pipe"], which maps to a clean exit 0. *)
let broken_pipe = function
  | Sys_error m ->
    let needle = "Broken pipe" in
    let n = String.length m and nl = String.length needle in
    let rec scan i = i + nl <= n && (String.sub m i nl = needle || scan (i + 1)) in
    scan 0
  | _ -> false

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Cmd.eval ~catch:false cmd with
  | code -> exit code
  | exception e when broken_pipe e -> exit 0
