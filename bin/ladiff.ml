(* The LaDiff command-line tool (§7): compare two versions of a LaTeX (or
   HTML) document and emit a marked-up document highlighting the changes. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes, also documented in the man page: 2 = parse error,
   4 = internal diagnostic failure. *)
let exit_parse_error = 2
let exit_internal = 4

let run old_file new_file format lenient threshold leaf_f output mode check =
  try
  let format =
    match format with
    | "latex" -> Treediff_doc.Ladiff.Latex
    | "html" -> Treediff_doc.Ladiff.Html
    | f -> failwith (Printf.sprintf "unknown format %S (latex|html)" f)
  in
  let config =
    Treediff_doc.Doc_tree.config_with ~leaf_f ~internal_t:threshold ()
  in
  let old_src = read_file old_file and new_src = read_file new_file in
  let out = Treediff_doc.Ladiff.run ~format ~lenient ~config ~old_src ~new_src () in
  List.iter
    (fun w -> Printf.eprintf "ladiff: warning: %s\n" w)
    out.Treediff_doc.Ladiff.warnings;
  let result = out.Treediff_doc.Ladiff.result in
  (if check then
     match
       Treediff.Diff.check result ~t1:out.Treediff_doc.Ladiff.old_tree
         ~t2:out.Treediff_doc.Ladiff.new_tree
     with
     | Ok () -> prerr_endline "check: edit script transforms old tree into new tree"
     | Error e -> failwith ("check failed: " ^ e));
  let text =
    match mode with
    | "latex" -> out.Treediff_doc.Ladiff.marked_latex
    | "html" ->
      Treediff_doc.Html_markup.to_html ~full_page:true
        ~title:(Filename.basename new_file) result.Treediff.Diff.delta
    | "text" -> out.Treediff_doc.Ladiff.marked_text
    | "script" -> Treediff_edit.Script_io.to_string result.Treediff.Diff.script
    | "summary" ->
      Treediff_doc.Markup.summary result.Treediff.Diff.delta ^ "\n"
    | m ->
      failwith (Printf.sprintf "unknown output mode %S (latex|html|text|script|summary)" m)
  in
  (match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc text))
  with
  | Treediff_doc.Latex_parser.Parse_error m
  | Treediff_doc.Html_parser.Parse_error m ->
    Printf.eprintf "ladiff: parse error: %s\n" m;
    exit exit_parse_error
  | Treediff_check.Diag.Failed ds ->
    List.iter
      (fun d -> prerr_endline (Treediff_check.Diag.to_string d))
      ds;
    exit exit_internal

let old_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Old version.")

let new_file =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"New version.")

let format =
  Arg.(value & opt string "latex" & info [ "f"; "format" ] ~docv:"FMT"
         ~doc:"Input format: $(b,latex) or $(b,html).")

let lenient =
  Arg.(value & flag & info [ "lenient" ]
         ~doc:"Recover from malformed input instead of failing: each \
               recovery (unbalanced braces, stray \\\\item, tag soup) is \
               reported as a warning on stderr and parsing continues.")

let threshold =
  Arg.(value & opt float 0.6 & info [ "t"; "threshold" ] ~docv:"T"
         ~doc:"Match threshold t for internal nodes (1/2 <= t <= 1), §5.1.")

let leaf_f =
  Arg.(value & opt float 0.5 & info [ "leaf-threshold" ] ~docv:"F"
         ~doc:"Leaf distance threshold f (0 <= f <= 1), Matching Criterion 1.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the result to $(docv) instead of stdout.")

let mode =
  Arg.(value & opt string "latex" & info [ "m"; "mode" ] ~docv:"MODE"
         ~doc:"Output mode: $(b,latex) (marked-up document), $(b,html) (marked-up web \
               page), $(b,text) (annotated tree), $(b,script) (edit script), \
               $(b,summary).")

let check =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Verify that the edit script transforms the old tree into the new one.")

let cmd =
  let doc = "detect and mark changes between two structured-document versions" in
  let man =
    [
      `S Manpage.s_description;
      `P "LaDiff parses two versions of a LaTeX (or HTML) document, computes a \
          minimum-cost edit script between their trees (Chawathe, Rajaraman, \
          Garcia-Molina & Widom, SIGMOD 1996), and emits the new version marked \
          up with the changes: inserted sentences in bold, deleted in small \
          font, updates in italics, moves labelled and footnoted.";
    ]
  in
  let exits =
    Cmd.Exit.info ~doc:"on malformed input (parse error)." exit_parse_error
    :: Cmd.Exit.info ~doc:"on an internal diagnostic failure." exit_internal
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "ladiff" ~version:"1.0.0" ~doc ~man ~exits)
    Term.(const run $ old_file $ new_file $ format $ lenient $ threshold $ leaf_f
          $ output $ mode $ check)

(* A closed downstream ([ladiff … | head]) is a normal way to stop consuming
   output: SIGPIPE is ignored so the write surfaces as
   [Sys_error "Broken pipe"], which maps to a clean exit 0. *)
let broken_pipe = function
  | Sys_error m ->
    let needle = "Broken pipe" in
    let n = String.length m and nl = String.length needle in
    let rec scan i = i + nl <= n && (String.sub m i nl = needle || scan (i + 1)) in
    scan 0
  | _ -> false

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Cmd.eval ~catch:false cmd with
  | code -> exit code
  | exception e when broken_pipe e -> exit 0
