(* Generic tree differ over the s-expression codec.

   treediff diff OLD NEW [-m script|delta|stats] [--zhang-shasha] …
   treediff apply TREE SCRIPT [-o OUT]

   `diff -m script` emits the Script_io format that `apply` replays — the
   paper's data-warehouse loop: compute the delta once, ship it, apply it
   at the replica. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes, also documented in each subcommand's man page:
   2 = parse error, 3 = budget exceeded (degraded output was produced),
   4 = internal diagnostic failure. *)
let exit_parse_error = 2
let exit_degraded = 3
let exit_internal = 4

(* Every format resolves through the registry: the supported set, the
   unknown-format error and lenient behaviour are the registry's, shared
   with ladiff and the serve daemon. *)
module Doc_format = Treediff_doc.Format

let parse_tree ?(lenient = false) (fmt : Doc_format.t) gen src =
  Doc_format.parse fmt ~lenient
    ~warn:(fun w -> Printf.eprintf "treediff: %s: %s\n" fmt.Doc_format.name w)
    gen src

let handle_errors f =
  try f () with
  | Treediff_tree.Codec.Parse_error m | Doc_format.Parse_error m ->
    Printf.eprintf "treediff: parse error: %s\n" m;
    exit exit_parse_error
  | Treediff_check.Diag.Failed ds ->
    List.iter
      (fun d -> prerr_endline (Treediff_check.Diag.to_string d))
      ds;
    exit exit_internal
  | Treediff_util.Fault.Injected p ->
    (* A TREEDIFF_FAULT crash simulation fired; report it instead of dying
       with an uncaught exception so the resilience sweeps get a stable
       exit code. *)
    Printf.eprintf "treediff: injected fault fired at %s\n" p;
    exit exit_internal

let print_tree (fmt : Doc_format.t) t = fmt.Doc_format.render t

let format_conv =
  let parse s =
    match Doc_format.find s with Ok f -> Ok f | Error m -> Error (`Msg m)
  in
  let print ppf (f : Doc_format.t) =
    Stdlib.Format.pp_print_string ppf f.Doc_format.name
  in
  Arg.conv ~docv:"FMT" (parse, print)

let format_arg =
  let doc =
    "Tree file format: "
    ^ String.concat ", "
        (List.map
           (fun (f : Doc_format.t) ->
             Printf.sprintf "$(b,%s) — %s" f.Doc_format.name f.Doc_format.doc)
           Doc_format.all)
    ^ ".  Id-preserving formats are required when checking scripts from a \
       $(b,store) archive, whose operations reference node identifiers."
  in
  Cmdliner.Arg.(
    value & opt format_conv Doc_format.sexp
    & info [ "f"; "format" ] ~docv:"FMT" ~doc)

let write_out output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text)

(* ------------------------------------------------------------------ diff *)

let render_result mode output (result : Treediff.Diff.t) =
  let text =
    match mode with
    | "script" -> Treediff_edit.Script_io.to_string result.Treediff.Diff.script
    | "delta" -> Treediff.Delta_io.to_string result.Treediff.Diff.delta ^ "\n"
    | "stats" ->
      let m = result.Treediff.Diff.measure in
      Printf.sprintf
        "ops: %d (ins %d, del %d, upd %d, mov %d)\ncost: %.2f\nweighted distance e: %d\n\
         matching: %d pairs\ncomparisons: %d leaf compares, %d partner checks\n"
        (Treediff_edit.Script.unweighted m)
        m.Treediff_edit.Script.inserts m.Treediff_edit.Script.deletes
        m.Treediff_edit.Script.updates m.Treediff_edit.Script.moves
        m.Treediff_edit.Script.cost m.Treediff_edit.Script.weighted
        (Treediff_matching.Matching.cardinal result.Treediff.Diff.matching)
        result.Treediff.Diff.stats.Treediff_util.Stats.leaf_compares
        result.Treediff.Diff.stats.Treediff_util.Stats.partner_checks
    | m -> failwith (Printf.sprintf "unknown mode %S (script|delta|stats)" m)
  in
  write_out output text

let make_budget budget_ms max_comparisons max_nodes =
  if budget_ms = None && max_comparisons = None && max_nodes = None then None
  else
    Some
      (Treediff_util.Budget.make ?deadline_ms:budget_ms ?max_comparisons
         ?max_nodes ())

let make_exec budget_ms max_comparisons max_nodes =
  Option.map
    (fun budget -> Treediff_util.Exec.create ~budget ())
    (make_budget budget_ms max_comparisons max_nodes)

(* Human-oriented renderings of the delta, orthogonal to [-m]. *)
let render_delta kind (result : Treediff.Diff.t) =
  match kind with
  | "side-by-side" -> Treediff_doc.Render_align.render result.Treediff.Diff.delta
  | "summary" -> Treediff_doc.Render_summary.render result.Treediff.Diff.delta
  | r -> failwith (Printf.sprintf "unknown rendering %S (side-by-side|summary)" r)

let run_diff old_file new_file format lenient algorithm approx threshold leaf_f
    window sim_threshold sim_top_k mode render zs budget_ms max_comparisons
    max_nodes output =
  handle_errors @@ fun () ->
  let gen = Treediff_tree.Tree.gen () in
  let t1 = parse_tree ~lenient format gen (read_file old_file) in
  let t2 = parse_tree ~lenient format gen (read_file new_file) in
  let exec = make_exec budget_ms max_comparisons max_nodes in
  if zs then begin
    match Treediff_zs.Zhang_shasha.mapping ?exec t1 t2 with
    | r ->
      write_out output
        (Printf.sprintf "zhang-shasha distance: %.2f (%d mapped pairs, %d relabels)\n"
           r.Treediff_zs.Zhang_shasha.dist
           (List.length r.Treediff_zs.Zhang_shasha.pairs)
           r.Treediff_zs.Zhang_shasha.relabels)
    | exception Treediff_util.Budget.Exceeded e ->
      (* no degradation ladder for the baseline; report and stop *)
      Printf.eprintf "treediff: %s\n" (Treediff_util.Budget.describe e);
      exit exit_degraded
  end
  else begin
    let algorithm =
      match (algorithm, approx) with
      | _, true | "approx", false -> Treediff.Config.Approx_match
      | "fast", false -> Treediff.Config.Fast_match
      | "simple", false -> Treediff.Config.Simple_match
      | a, false ->
        failwith (Printf.sprintf "unknown algorithm %S (fast|simple|approx)" a)
    in
    let criteria =
      Treediff_matching.Criteria.make ~leaf_f ~internal_t:threshold
        ~compare:Treediff_textdiff.Word_compare.distance ()
    in
    let config =
      {
        (Treediff.Config.with_criteria criteria) with
        algorithm;
        scan_window = window;
        sim_threshold;
        sim_top_k;
      }
    in
    match Treediff.Diff.diff_result ~config ?exec t1 t2 with
    | Ok result -> (
      (match Treediff.Diff.check result ~t1 ~t2 with
      | Ok () -> ()
      | Error e ->
        Printf.eprintf "treediff: internal check failed: %s\n" e;
        exit exit_internal);
      (match render with
      | None -> render_result mode output result
      | Some kind -> write_out output (render_delta kind result));
      match result.Treediff.Diff.degraded with
      | None -> ()
      | Some rung ->
        Printf.eprintf
          "treediff: budget exceeded; degraded to the %s rung (output verified)\n"
          (Treediff.Diff.rung_name rung);
        exit exit_degraded)
    | Error f ->
      List.iter
        (fun (attempt, reason) ->
          Printf.eprintf "treediff: %s attempt failed: %s\n" attempt reason)
        f.Treediff.Diff.attempts;
      (* last resort: a flat line diff of the two outlines *)
      write_out output (Treediff_textdiff.Line_diff.render f.Treediff.Diff.flat);
      exit
        (match f.Treediff.Diff.cause with
        | Treediff.Diff.Budget_exhausted _ -> exit_degraded
        | _ -> exit_internal)
  end

let old_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Old tree file.")

let new_file =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"New tree file.")

let algorithm =
  Arg.(value & opt string "fast" & info [ "a"; "algorithm" ] ~docv:"ALG"
         ~doc:"Matching algorithm: $(b,fast) (FastMatch, §5.3), $(b,simple) \
               (Match, §5.2) or $(b,approx) (greedy SimHash matching — \
               fastest, least minimal scripts).")

let approx =
  Arg.(value & flag & info [ "approx" ]
         ~doc:"Shorthand for $(b,-a approx): match greedily on subtree \
               SimHash signatures with no similarity-criterion tests.  \
               Output is still re-verified by the static checker.")

let threshold =
  Arg.(value & opt float 0.6 & info [ "t"; "threshold" ] ~docv:"T"
         ~doc:"Internal-node match threshold t.")

let leaf_f =
  Arg.(value & opt float 0.5 & info [ "leaf-threshold" ] ~docv:"F"
         ~doc:"Leaf distance threshold f (word-LCS distance).")

let window =
  Arg.(value & opt (some int) None & info [ "k"; "window" ] ~docv:"K"
         ~doc:"A(k) scan window: bound FastMatch's straggler scan to $(docv) chain \
               positions (faster, may miss far moves).  Default: unbounded.")

let sim_threshold =
  Arg.(value & opt (some int) None & info [ "sim-threshold" ] ~docv:"N"
         ~doc:"Enable FastMatch's similarity prefilter: label chains longer \
               than $(docv) skip the near-quadratic LCS+scan for banded-LSH \
               top-k candidate retrieval over subtree SimHash signatures; \
               every candidate is still verified with the real matching \
               criterion.  Default: off (exact FastMatch).")

let sim_top_k =
  Arg.(value & opt int 8 & info [ "sim-top-k" ] ~docv:"K"
         ~doc:"Candidates retrieved per LSH probe when $(b,--sim-threshold) \
               or the approx matcher is active.")

let mode =
  Arg.(value & opt string "script" & info [ "m"; "mode" ] ~docv:"MODE"
         ~doc:"Output: $(b,script) (replayable), $(b,delta) (annotated tree) or $(b,stats).")

let render_arg =
  Arg.(value & opt (some string) None & info [ "render" ] ~docv:"R"
         ~doc:"Render the diff for humans instead of $(b,-m): \
               $(b,side-by-side) (aligned two-column old/new view) or \
               $(b,summary) (terse natural-language change summary, e.g. \
               \"moved \xc2\xa73 under \xc2\xa72; reworded 4 sentences\").")

let zs =
  Arg.(value & flag & info [ "zhang-shasha" ]
         ~doc:"Run the Zhang-Shasha baseline instead of the paper's pipeline.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write to $(docv) instead of stdout.")

let lenient =
  Arg.(value & flag & info [ "lenient" ]
         ~doc:"Recover from malformed input instead of failing: each \
               recovery is reported as a warning on stderr and parsing \
               continues.  Ignored by formats without a recovery mode \
               (see $(b,--format)).")

let budget_ms =
  Arg.(value & opt (some float) None & info [ "budget-ms" ] ~docv:"MS"
         ~doc:"Wall-clock budget in milliseconds.  When exceeded, the \
               pipeline degrades through cheaper rungs (windowed, keyed, \
               rebuild) and exits with code 3 while still producing verified \
               output.")

let max_comparisons =
  Arg.(value & opt (some int) None & info [ "max-comparisons" ] ~docv:"N"
         ~doc:"Cap the number of leaf/internal node comparisons before \
               degrading (see $(b,--budget-ms)).")

let max_nodes =
  Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N"
         ~doc:"Refuse inputs with more than $(docv) total nodes before \
               degrading (see $(b,--budget-ms)).")

let exit_parse_info =
  Cmd.Exit.info ~doc:"on malformed input (parse error)." exit_parse_error

let exit_internal_info =
  Cmd.Exit.info ~doc:"on an internal diagnostic failure." exit_internal

let diff_exits =
  exit_parse_info
  :: Cmd.Exit.info
       ~doc:"when a resource budget was exceeded: the output was produced by \
             a degraded rung (or a flat line diff) and verified."
       exit_degraded
  :: exit_internal_info :: Cmd.Exit.defaults

let diff_cmd =
  let doc = "compute a minimum-cost edit script between two trees" in
  Cmd.v (Cmd.info "diff" ~doc ~exits:diff_exits)
    Term.(const run_diff $ old_file $ new_file $ format_arg $ lenient
          $ algorithm $ approx $ threshold $ leaf_f $ window $ sim_threshold
          $ sim_top_k $ mode $ render_arg $ zs $ budget_ms $ max_comparisons
          $ max_nodes $ output)

(* ----------------------------------------------------------------- apply *)

let run_apply tree_file script_file format lenient jobs output =
  handle_errors @@ fun () ->
  let gen = Treediff_tree.Tree.gen () in
  let t = parse_tree ~lenient format gen (read_file tree_file) in
  let script =
    match Treediff_edit.Script_io.parse (read_file script_file) with
    | Ok script -> script
    | Error msg -> failwith (Printf.sprintf "%s: %s" script_file msg)
  in
  let apply () =
    match jobs with
    | None -> Treediff_edit.Script.apply_result t script
    | Some j -> (
      (* Parallel replay over the commuting slices of the script's
         dependence graph; byte-identical to the sequential path. *)
      match Treediff_check.Depgraph.apply_parallel ~jobs:j t script with
      | t' -> Ok t'
      | exception Treediff_edit.Script.Apply_error msg -> Error msg)
  in
  match apply () with
  | Ok t' -> write_out output (print_tree format t')
  | Error msg ->
    Printf.eprintf "treediff: script does not apply: %s\n" msg;
    exit exit_internal

let tree_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TREE" ~doc:"Tree to transform.")

let script_file =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"SCRIPT"
         ~doc:"Edit script (Script_io format, as produced by $(b,diff -m script)).")

let apply_jobs =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Replay independent slices of the script's dependence graph \
               in parallel over $(docv) domains.  The result is \
               byte-identical to the sequential replay at any $(docv).")

let apply_cmd =
  let doc = "replay a stored edit script on a tree" in
  let exits = exit_parse_info :: exit_internal_info :: Cmd.Exit.defaults in
  Cmd.v (Cmd.info "apply" ~doc ~exits)
    Term.(const run_apply $ tree_file $ script_file $ format_arg $ lenient
          $ apply_jobs $ output)

(* ----------------------------------------------------------------- batch *)

(* Inputs for one batch item: a display name, a filesystem-safe output stem
   and the two tree files. *)
type batch_item = {
  b_name : string;
  b_stem : string;
  b_old : string;
  b_new : string;
}

let collect_dir dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.to_list entries
  |> List.filter_map (fun entry ->
         match String.index_opt entry '.' with
         | None -> None
         | Some _ ->
           (* accept X.old.EXT and pair it with X.new.EXT *)
           let rec find_marker from =
             match String.index_from_opt entry from '.' with
             | None -> None
             | Some i ->
               if
                 i + 4 < String.length entry
                 && String.sub entry i 5 = ".old."
               then Some i
               else find_marker (i + 1)
           in
           (match find_marker 0 with
           | None -> None
           | Some i ->
             let stem = String.sub entry 0 i in
             let ext = String.sub entry (i + 5) (String.length entry - i - 5) in
             let new_name = Printf.sprintf "%s.new.%s" stem ext in
             Some
               {
                 b_name = stem;
                 b_stem = stem;
                 b_old = Filename.concat dir entry;
                 b_new = Filename.concat dir new_name;
               }))

let collect_manifest path =
  let base = Filename.dirname path in
  let resolve p =
    if Filename.is_relative p then Filename.concat base p else p
  in
  let lines = String.split_on_char '\n' (read_file path) in
  List.filteri (fun _ l -> String.trim l <> "") lines
  |> List.filter (fun l -> (String.trim l).[0] <> '#')
  |> List.mapi (fun i line ->
         match
           String.split_on_char ' ' (String.trim line)
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun s -> s <> "")
         with
         | [ old_f; new_f ] ->
           {
             b_name = Printf.sprintf "%s -> %s" old_f new_f;
             b_stem = Printf.sprintf "pair-%03d" i;
             b_old = resolve old_f;
             b_new = resolve new_f;
           }
         | _ ->
           failwith
             (Printf.sprintf
                "manifest line %d: expected two whitespace-separated paths"
                (i + 1)))

let run_batch input format lenient jobs approx sim_threshold sim_top_k mode
    budget_ms max_comparisons max_nodes out_dir =
  handle_errors @@ fun () ->
  let config =
    {
      Treediff.Config.default with
      algorithm =
        (if approx then Treediff.Config.Approx_match
         else Treediff.Config.default.Treediff.Config.algorithm);
      sim_threshold;
      sim_top_k;
    }
  in
  let items =
    if Sys.is_directory input then collect_dir input else collect_manifest input
  in
  if items = [] then begin
    Printf.eprintf "treediff: batch: no *.old.* pairs found in %s\n" input;
    exit exit_parse_error
  end;
  (* Parse sequentially (I/O-bound); a malformed pair is reported and scored
     like a `diff` parse error without sinking the rest of the batch. *)
  let parsed =
    List.map
      (fun item ->
        match
          let gen = Treediff_tree.Tree.gen () in
          let t1 = parse_tree ~lenient format gen (read_file item.b_old) in
          let t2 = parse_tree ~lenient format gen (read_file item.b_new) in
          (t1, t2)
        with
        | pair -> (item, Ok pair)
        | exception Doc_format.Parse_error m -> (item, Error m)
        | exception Sys_error m -> (item, Error m))
      items
  in
  let good = List.filter_map (fun (i, r) -> Result.to_option r |> Option.map (fun p -> (i, p))) parsed in
  let pairs = Array.of_list (List.map snd good) in
  (* One context per pair, budgets rearmed per pair: a straggler degrades
     alone instead of starving its successors. *)
  let execs _ =
    match make_exec budget_ms max_comparisons max_nodes with
    | Some e -> e
    | None -> Treediff_util.Exec.create ()
  in
  let outcomes = Treediff.Batch.run ~config ~execs ?jobs pairs in
  let by_item = Hashtbl.create 16 in
  List.iteri (fun i (item, _) -> Hashtbl.replace by_item item.b_stem outcomes.(i)) good;
  (match out_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  let severity = ref 0 in
  let bump code = if code > !severity then severity := code in
  List.iter
    (fun (item, parse_result) ->
      match parse_result with
      | Error m ->
        bump exit_parse_error;
        Printf.printf "parse-error  %s: %s\n" item.b_name m
      | Ok _ -> (
        match Hashtbl.find by_item item.b_stem with
        | Ok (result : Treediff.Diff.t) ->
          let m = result.Treediff.Diff.measure in
          (match result.Treediff.Diff.degraded with
          | None ->
            Printf.printf "ok           %s (%d ops, cost %.2f)\n" item.b_name
              (Treediff_edit.Script.unweighted m)
              m.Treediff_edit.Script.cost
          | Some rung ->
            bump exit_degraded;
            Printf.printf "degraded     %s (%s rung, %d ops, verified)\n"
              item.b_name
              (Treediff.Diff.rung_name rung)
              (Treediff_edit.Script.unweighted m));
          Option.iter
            (fun dir ->
              render_result mode
                (Some (Filename.concat dir (item.b_stem ^ "." ^ mode)))
                result)
            out_dir
        | Error (f : Treediff.Diff.failure) ->
          bump exit_internal;
          let reason =
            match f.Treediff.Diff.attempts with
            | (_, r) :: _ -> r
            | [] -> "unknown"
          in
          Printf.printf "failed       %s: %s\n" item.b_name reason;
          Option.iter
            (fun dir ->
              write_out
                (Some (Filename.concat dir (item.b_stem ^ ".flat")))
                (Treediff_textdiff.Line_diff.render f.Treediff.Diff.flat))
            out_dir))
    parsed;
  let n_ok =
    List.length parsed
    - List.length (List.filter (fun (_, r) -> Result.is_error r) parsed)
  in
  Printf.eprintf "treediff: batch: %d pairs (%d parsed), %d degraded, %d failed\n"
    (List.length parsed) n_ok
    (Treediff.Batch.degraded_count outcomes)
    (Treediff.Batch.failed_count outcomes);
  if !severity > 0 then exit !severity

let batch_input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT"
         ~doc:"Either a directory of $(i,X).old.$(i,EXT) / $(i,X).new.$(i,EXT) \
               pairs, or a manifest file with one $(i,OLD NEW) path pair per \
               line (blank lines and $(b,#) comments ignored; relative paths \
               resolve against the manifest's directory).")

let batch_jobs =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Diff $(docv) pairs in parallel (OCaml domains).  Default: the \
               number of cores.  Results are identical at any $(docv): each \
               pair runs in its own execution context.")

let batch_out_dir =
  Arg.(value & opt (some string) None & info [ "o"; "output-dir" ] ~docv:"DIR"
         ~doc:"Write each pair's rendering (see $(b,-m)) to \
               $(docv)/$(i,STEM).$(i,MODE); failed pairs leave a \
               $(i,STEM).flat line diff.  Without it only per-pair status \
               lines are printed.")

let batch_cmd =
  let doc = "diff many tree pairs in parallel" in
  let man =
    [
      `S Manpage.s_description;
      `P "Runs the full diff pipeline over every pair, fanning the pairs out \
          over a domain pool.  Each pair gets its own budget and execution \
          context, so one enormous pair degrades (or fails) alone while the \
          rest complete, and the combined output is byte-identical to a \
          sequential run.  The exit code is the worst per-pair outcome: \
          $(b,0) all clean, $(b,2) some pair failed to parse, $(b,3) some \
          pair degraded, $(b,4) some pair failed outright.";
    ]
  in
  Cmd.v (Cmd.info "batch" ~doc ~man ~exits:diff_exits)
    Term.(const run_batch $ batch_input $ format_arg $ lenient $ batch_jobs
          $ approx $ sim_threshold $ sim_top_k $ mode $ budget_ms
          $ max_comparisons $ max_nodes $ batch_out_dir)

(* ----------------------------------------------------------------- check *)

module Diag = Treediff_check.Diag

let run_check old_file new_file format lenient script_file delta_file audit
    exhaustive output =
  handle_errors @@ fun () ->
  let gen = Treediff_tree.Tree.gen () in
  let t1 = parse_tree ~lenient format gen (read_file old_file) in
  let t2 = parse_tree ~lenient format gen (read_file new_file) in
  if exhaustive && (script_file <> None || delta_file <> None) then
    failwith "--audit-exhaustive requires the self-check mode (no --script/--delta)";
  let diags, oracle_summary =
    match (script_file, delta_file) with
    | Some _, Some _ -> failwith "--script and --delta are mutually exclusive"
    | Some sf, None -> (
      (* A serialized script: lint + conformance against the tree pair.  No
         matching is available, so the matching analyzer does not run. *)
      match Treediff_edit.Script_io.parse (read_file sf) with
      | Error msg -> ([ Diag.make Diag.Script_parse "%s: %s" sf msg ], None)
      | Ok script -> (Treediff_check.Check.verify ~t1 ~t2 script, None))
    | None, Some df -> (
      (* A serialized delta: structural rules + does it reproduce NEW. *)
      match Treediff.Delta_io.parse (read_file df) with
      | Error msg -> ([ Diag.make Diag.Delta_parse "%s: %s" df msg ], None)
      | Ok delta -> (Treediff.Delta_check.run ~new_tree:t2 delta, None))
    | None, None ->
      (* Self-check: diff the pair, then verify our own artifacts. *)
      let config = Treediff.Config.(with_check false default) in
      let result = Treediff.Diff.diff ~config t1 t2 in
      let diags = Treediff.Diff.verify ~config ~audit_data:audit result ~t1 ~t2 in
      if exhaustive then begin
        (* Minimality audit: prove the generator's op count minimal on
           every maximal matched subtree pair small enough to decide. *)
        let report =
          Treediff.Oracle_audit.run ~matching:result.Treediff.Diff.matching
            ~t1 ~t2 ()
        in
        (diags @ report.Treediff.Oracle_audit.diags,
         Some (Treediff.Oracle_audit.summary report))
      end
      else (diags, None)
  in
  let buf = Buffer.create 256 in
  List.iter (fun d -> Buffer.add_string buf (Diag.to_string d ^ "\n")) diags;
  Option.iter (fun s -> Buffer.add_string buf (s ^ "\n")) oracle_summary;
  Buffer.add_string buf (Diag.summary diags ^ "\n");
  write_out output (Buffer.contents buf);
  if Diag.errors diags <> [] then exit 1

let check_script =
  Arg.(value & opt (some file) None & info [ "script" ] ~docv:"FILE"
         ~doc:"Verify this stored edit script (Script_io format) against the \
               tree pair instead of diffing.")

let check_delta =
  Arg.(value & opt (some file) None & info [ "delta" ] ~docv:"FILE"
         ~doc:"Verify this stored delta (Delta_io format) against the tree \
               pair instead of diffing.")

let check_audit =
  Arg.(value & flag & info [ "audit" ]
         ~doc:"Also audit the data itself: Matching Criterion 3 ambiguity \
               and label-schema cycles (warnings).")

let check_exhaustive =
  Arg.(value & flag & info [ "audit-exhaustive" ]
         ~doc:"Also prove (or refute) true minimality of the generated \
               script on every maximal matched subtree pair of at most 8 \
               nodes, by exhaustive bidirectional search.  Non-minimal \
               pairs print as TD601 and exhausted searches as TD602 \
               (warnings).  Self-check mode only.")

let check_cmd =
  let doc = "statically verify diff artifacts against a tree pair" in
  let man =
    [
      `S Manpage.s_description;
      `P "Without flags, diffs OLD and NEW and runs the static verifier over \
          the result — script lint, matching analysis and conformance audit. \
          With $(b,--script) or $(b,--delta), verifies a stored artifact \
          instead.  Prints one coded diagnostic per line (TD1xx script lint, \
          TD2xx matching, TD3xx conformance, TD4xx delta structure) and \
          exits non-zero when any error-severity finding is present.";
      `P "With $(b,--audit-exhaustive), the self-check additionally runs the \
          exhaustive minimality oracle over every tiny matched subtree pair \
          and reports where the generated script is provably non-minimal \
          (TD6xx) plus a one-line summary of the audit.";
    ]
  in
  let exits = exit_parse_info :: exit_internal_info :: Cmd.Exit.defaults in
  Cmd.v (Cmd.info "check" ~doc ~man ~exits)
    Term.(const run_check $ old_file $ new_file $ format_arg $ lenient
          $ check_script $ check_delta $ check_audit $ check_exhaustive
          $ output)

(* ----------------------------------------------------------------- store *)

module Store = Treediff_store.Store
module Shard = Treediff_store.Shard

(* Store-level errors (missing versions, refused deltas, damaged archives)
   are user-facing operational failures, not internal bugs: exit 1. *)
let ok_or_die = function
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "treediff: store: %s\n" msg;
    exit 1

let open_store archive =
  let store = ok_or_die (Store.open_ archive) in
  if Store.truncated_tail store then
    Printf.eprintf
      "treediff: store: %s has a damaged tail (interrupted commit); %d \
       version(s) remain readable and the next commit reclaims the space\n"
      archive (Store.versions store);
  store

let open_corpus dir =
  let corpus = ok_or_die (Shard.open_ dir) in
  if Shard.manifest_truncated corpus then
    Printf.eprintf
      "treediff: store: %s: manifest had a damaged tail (interrupted commit \
       isolated on replay)\n"
      dir;
  (match Shard.aborted_commits corpus with
  | [] -> ()
  | aborted ->
    Printf.eprintf
      "treediff: store: %s: %d aborted commit(s) from an earlier crash; \
       their versions are invisible and $(b,store gc) reclaims the bytes\n"
      dir (List.length aborted));
  corpus

(* A corpus directory and a single-file archive share the verbs; per-document
   verbs on a corpus need [--doc] to say which chain they mean. *)
let require_doc = function
  | Some doc -> doc
  | None -> ok_or_die (Error "this archive is a corpus; pick a chain with --doc")

let refuse_doc archive = function
  | None -> ()
  | Some _ ->
    ok_or_die
      (Error
         (Printf.sprintf
            "%s is a single-document archive (--doc applies to a corpus \
             created with store init --shards)"
            archive))

let policy_string ~interval ~max_replay_ops =
  match (interval, max_replay_ops) with
  | 0, 0 -> "checkpoints disabled"
  | n, 0 -> Printf.sprintf "checkpoint every %d commits" n
  | 0, m -> Printf.sprintf "checkpoint beyond %d replay ops" m
  | n, m -> Printf.sprintf "checkpoint every %d commits or %d replay ops" n m

let run_store_init archive interval max_replay_ops shards =
  handle_errors @@ fun () ->
  if shards > 0 then begin
    let corpus = ok_or_die (Shard.init ~interval ~max_replay_ops ~shards archive) in
    Printf.printf "initialized corpus %s (%d shards, %s)\n" (Shard.dir corpus)
      (Shard.shards corpus)
      (policy_string ~interval:(Shard.interval corpus)
         ~max_replay_ops:(Shard.max_replay_ops corpus))
  end
  else begin
    let store = ok_or_die (Store.init ~interval ~max_replay_ops archive) in
    Printf.printf "initialized %s (%s)\n" (Store.path store)
      (policy_string ~interval:(Store.interval store)
         ~max_replay_ops:(Store.max_replay_ops store))
  end

let run_store_commit archive tree_file format lenient doc =
  handle_errors @@ fun () ->
  let gen = Treediff_tree.Tree.gen () in
  let tree = parse_tree ~lenient format gen (read_file tree_file) in
  let entry =
    if Shard.is_corpus archive then
      let corpus = open_corpus archive in
      ok_or_die (Shard.commit corpus ~doc:(require_doc doc) tree)
    else begin
      refuse_doc archive doc;
      ok_or_die (Store.commit (open_store archive) tree)
    end
  in
  Printf.printf "committed version %d (%s, %d ops, %d bytes)\n"
    entry.Store.version
    (Store.kind_name entry.Store.kind)
    entry.Store.ops entry.Store.bytes

let print_entries entries =
  Printf.printf "%-8s %-10s %6s %8s %8s  %s\n" "version" "kind" "ops" "bytes"
    "next_id" "hash";
  List.iter
    (fun (e : Store.entry) ->
      Printf.printf "%-8d %-10s %6d %8d %8d  %016Lx\n" e.Store.version
        (Store.kind_name e.Store.kind)
        e.Store.ops e.Store.bytes e.Store.next_id e.Store.hash)
    entries

let run_store_log archive doc =
  handle_errors @@ fun () ->
  if Shard.is_corpus archive then begin
    let corpus = open_corpus archive in
    match doc with
    | Some doc -> print_entries (ok_or_die (Shard.log corpus doc))
    | None ->
      Printf.printf "%-24s %8s %5s  %s\n" "document" "versions" "shard"
        "head hash";
      List.iter
        (fun d ->
          Printf.printf "%-24s %8d %5d  %s\n" d (Shard.versions corpus d)
            (Shard.shard_of corpus d)
            (match Shard.head_hash corpus d with
            | Some h -> Printf.sprintf "%016Lx" h
            | None -> "-"))
        (Shard.docs corpus)
  end
  else begin
    refuse_doc archive doc;
    print_entries (Store.log (open_store archive))
  end

let run_store_show archive version output =
  handle_errors @@ fun () ->
  let store = open_store archive in
  let e = ok_or_die (Store.entry store version) in
  let header =
    Printf.sprintf "version %d: %s, %d ops, %d bytes, next_id %d, hash %016Lx\n"
      e.Store.version
      (Store.kind_name e.Store.kind)
      e.Store.ops e.Store.bytes e.Store.next_id e.Store.hash
  in
  let body =
    match e.Store.kind with
    | Store.Snapshot -> ""
    | Store.Delta | Store.Checkpoint ->
      Treediff_edit.Script_io.to_string (ok_or_die (Store.script_of store version))
  in
  write_out output (header ^ body)

let run_store_materialize archive version verify budget_ms format output doc =
  handle_errors @@ fun () ->
  let exec =
    Option.map
      (fun ms ->
        Treediff_util.Exec.create ~budget:(Treediff_util.Budget.make ~deadline_ms:ms ()) ())
      budget_ms
  in
  let result =
    if Shard.is_corpus archive then
      Shard.materialize ~verify ?exec (open_corpus archive)
        ~doc:(require_doc doc) version
    else begin
      refuse_doc archive doc;
      Store.materialize ~verify ?exec (open_store archive) version
    end
  in
  match result with
  | Ok tree -> write_out output (print_tree format tree)
  | Error msg -> ok_or_die (Error msg)
  | exception Treediff_util.Budget.Exceeded e ->
    Printf.eprintf "treediff: store: %s\n" (Treediff_util.Budget.describe e);
    exit exit_degraded

let run_store_diff archive from_ to_ output doc =
  handle_errors @@ fun () ->
  let script =
    if Shard.is_corpus archive then
      ok_or_die
        (Shard.diff_between (open_corpus archive) ~doc:(require_doc doc) ~from_
           ~to_)
    else begin
      refuse_doc archive doc;
      ok_or_die (Store.diff_between (open_store archive) ~from_ ~to_)
    end
  in
  write_out output (Treediff_edit.Script_io.to_string script)

let run_store_gc archive prune_before jobs =
  handle_errors @@ fun () ->
  if Shard.is_corpus archive then begin
    (match prune_before with
    | None -> ()
    | Some _ ->
      ok_or_die (Error "--prune-before applies to single-document archives"));
    let corpus = open_corpus archive in
    let before, after = ok_or_die (Shard.gc ?jobs corpus) in
    Printf.printf "compacted corpus %s: %d -> %d bytes (%d shards)\n"
      (Shard.dir corpus) before after (Shard.shards corpus)
  end
  else begin
    let store = open_store archive in
    let before, after = ok_or_die (Store.gc ?prune_before store) in
    Printf.printf "compacted %s: %d -> %d bytes (base version %d)\n"
      (Store.path store) before after (Store.base_version store)
  end

(* ---------------------------------------------------- corpus-only verbs *)

(* An ingest source directory: one subdirectory per document, whose files
   (in lexicographic order) are the successive versions. *)
let sources_of_dir ~format ~lenient docs_dir =
  let entries = Sys.readdir docs_dir in
  Array.sort compare entries;
  let sources =
    Array.to_list entries
    |> List.filter_map (fun name ->
           let dir = Filename.concat docs_dir name in
           if not (Sys.is_directory dir) then None
           else begin
             let files = Sys.readdir dir in
             Array.sort compare files;
             let files =
               Array.to_list files
               |> List.filter (fun f ->
                      let p = Filename.concat dir f in
                      String.length f > 0 && f.[0] <> '.'
                      && not (Sys.is_directory p))
               |> List.map (Filename.concat dir)
               |> Array.of_list
             in
             if Array.length files = 0 then None
             else
               Some
                 {
                   Shard.name;
                   count = Array.length files;
                   load =
                     (fun v ->
                       (* called from pool domains: fresh generator per call,
                          failures reported as typed errors so one bad file
                          skips its document, not the ingest *)
                       match
                         let gen = Treediff_tree.Tree.gen () in
                         parse_tree ~lenient format gen (read_file files.(v))
                       with
                       | tree -> Ok tree
                       | exception Doc_format.Parse_error m ->
                         Error (Printf.sprintf "%s: parse error: %s" files.(v) m)
                       | exception Sys_error m -> Error m);
                 }
           end)
  in
  sources

let run_store_ingest archive docs_dir jobs chunk_docs budget_ms format lenient =
  handle_errors @@ fun () ->
  let corpus = open_corpus archive in
  let sources = sources_of_dir ~format ~lenient docs_dir in
  if sources = [] then
    ok_or_die
      (Error
         (Printf.sprintf "%s has no document subdirectories to ingest" docs_dir));
  let on_chunk ~done_ ~total =
    Printf.eprintf "treediff: store: ingest chunk %d/%d\n%!" done_ total
  in
  let report =
    ok_or_die
      (Shard.ingest ?jobs ?chunk_docs ?budget_ms ~on_chunk corpus sources)
  in
  List.iter
    (fun (doc, msg) ->
      Printf.eprintf "treediff: store: skipped %s: %s\n" doc msg)
    report.Shard.docs_failed;
  Printf.printf
    "ingested %d document(s): %d version(s) appended in %d commit(s), %d \
     already complete, %d failed\n"
    report.Shard.docs_ingested report.Shard.versions_appended
    report.Shard.chunks report.Shard.docs_skipped
    (List.length report.Shard.docs_failed)

let run_store_stats archive =
  handle_errors @@ fun () ->
  if Shard.is_corpus archive then begin
    let corpus = open_corpus archive in
    let s = Shard.stats corpus in
    let shard_total = Array.fold_left ( + ) 0 s.Shard.stat_shard_bytes in
    let largest = Array.fold_left max 0 s.Shard.stat_shard_bytes in
    Printf.printf "%s: %d shards, %d document(s), %d version(s)\n" archive
      s.Shard.stat_shards s.Shard.stat_docs s.Shard.stat_versions;
    Printf.printf "shard bytes: %d total, %d largest; manifest bytes: %d\n"
      shard_total largest s.Shard.stat_manifest_bytes;
    Printf.printf "epoch %d; %d aborted commit(s) awaiting gc\n" s.Shard.stat_epoch
      s.Shard.stat_aborted
  end
  else begin
    (* the single-file archive is the 1-shard special case *)
    let store = open_store archive in
    let bytes =
      match Unix.stat archive with
      | { Unix.st_size; _ } -> st_size
      | exception Unix.Unix_error _ -> 0
    in
    Printf.printf "%s: 1 shard (single-file archive), %d version(s), %d bytes\n"
      archive (Store.versions store) bytes
  end

let run_store_verify archive jobs =
  handle_errors @@ fun () ->
  if Shard.is_corpus archive then begin
    let corpus = open_corpus archive in
    let n = ok_or_die (Shard.verify ?jobs corpus) in
    Printf.printf "verified %d version(s) across %d document(s)\n" n
      (Shard.doc_count corpus)
  end
  else begin
    let store = open_store archive in
    for v = 0 to Store.versions store - 1 do
      match Store.materialize ~verify:true store v with
      | Ok _ -> ()
      | Error msg -> ok_or_die (Error msg)
    done;
    Printf.printf "verified %d version(s)\n" (Store.versions store)
  end

let archive_new =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ARCHIVE"
         ~doc:"Archive file to create.")

let archive =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"ARCHIVE"
         ~doc:"Version archive (created by $(b,store init)).")

let store_interval =
  Arg.(value & opt int 8 & info [ "interval" ] ~docv:"N"
         ~doc:"Take a full-snapshot checkpoint every $(docv) commits \
               ($(b,0) disables the counter).")

let store_max_replay =
  Arg.(value & opt int 512 & info [ "max-replay-ops" ] ~docv:"N"
         ~doc:"Take a checkpoint as soon as replaying the chain from the \
               last one would exceed $(docv) edit operations ($(b,0) \
               disables the cost trigger).")

let store_version_pos =
  Arg.(required & pos 1 (some int) None & info [] ~docv:"VERSION"
         ~doc:"Version number (see $(b,store log)).")

let store_verify =
  Arg.(value & flag & info [ "verify" ]
         ~doc:"Check the materialized tree against the hash stored at \
               commit time.")

let store_from =
  Arg.(required & opt (some int) None & info [ "from" ] ~docv:"I"
         ~doc:"Source version.")

let store_to =
  Arg.(required & opt (some int) None & info [ "to" ] ~docv:"J"
         ~doc:"Target version.")

let store_prune =
  Arg.(value & opt (some int) None & info [ "prune-before" ] ~docv:"P"
         ~doc:"Discard history older than version $(docv); $(docv) becomes \
               the new base snapshot (version numbers are preserved).  \
               Single-document archives only.")

let store_shards =
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N"
         ~doc:"Create a sharded corpus directory with $(docv) hash-bucketed \
               shard files and a write-ahead manifest, instead of a \
               single-file archive.  The shard count is fixed for the \
               corpus's lifetime.")

let store_doc =
  Arg.(value & opt (some string) None & info [ "doc" ] ~docv:"DOC"
         ~doc:"Document name inside a corpus.  Required for per-document \
               verbs on a corpus; rejected on a single-document archive.")

let store_jobs =
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the parallel phases (default: the \
               machine's recommendation).")

let store_chunk_docs =
  Arg.(value & opt (some int) None & info [ "chunk-docs" ] ~docv:"N"
         ~doc:"Documents per write-ahead commit during ingest (default 16): \
               a crash loses at most one chunk, and smaller chunks checkpoint \
               progress more often.")

let docs_dir_pos =
  Arg.(required & pos 1 (some dir) None & info [] ~docv:"DOCS"
         ~doc:"Ingest source: a directory with one subdirectory per \
               document, whose files in lexicographic order are the \
               successive versions.")

let tree_file_pos1 =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"TREE"
         ~doc:"Document to commit as the next version.")

let store_exit_info =
  Cmd.Exit.info ~doc:"on a store-level failure: missing version, refused \
                      delta, damaged or incompatible archive." 1

let store_cmds =
  let exits = store_exit_info :: exit_parse_info :: exit_internal_info
              :: Cmd.Exit.defaults in
  [
    Cmd.v
      (Cmd.info "init"
         ~doc:"create an empty version archive, or a sharded corpus with \
               $(b,--shards)"
         ~exits)
      Term.(const run_store_init $ archive_new $ store_interval
            $ store_max_replay $ store_shards);
    Cmd.v
      (Cmd.info "commit" ~doc:"append a document as the next version" ~exits)
      Term.(const run_store_commit $ archive $ tree_file_pos1 $ format_arg
            $ lenient $ store_doc);
    Cmd.v
      (Cmd.info "log"
         ~doc:"list stored versions (or, for a corpus, its documents)" ~exits)
      Term.(const run_store_log $ archive $ store_doc);
    Cmd.v
      (Cmd.info "show" ~doc:"print one version's metadata and stored delta"
         ~exits)
      Term.(const run_store_show $ archive $ store_version_pos $ output);
    Cmd.v
      (Cmd.info "materialize" ~doc:"reconstruct a stored version" ~exits)
      Term.(const run_store_materialize $ archive $ store_version_pos
            $ store_verify $ budget_ms $ format_arg $ output $ store_doc);
    Cmd.v
      (Cmd.info "diff"
         ~doc:"compose the stored chain into one script between two versions"
         ~exits)
      Term.(const run_store_diff $ archive $ store_from $ store_to $ output
            $ store_doc);
    Cmd.v
      (Cmd.info "gc" ~doc:"compact the archive, optionally pruning history"
         ~exits)
      Term.(const run_store_gc $ archive $ store_prune $ store_jobs);
    Cmd.v
      (Cmd.info "ingest"
         ~doc:"bulk-load a document corpus from a directory tree" ~exits)
      Term.(const run_store_ingest $ archive $ docs_dir_pos $ store_jobs
            $ store_chunk_docs $ budget_ms $ format_arg $ lenient);
    Cmd.v
      (Cmd.info "stats" ~doc:"corpus shape and on-disk size, without scanning"
         ~exits)
      Term.(const run_store_stats $ archive);
    Cmd.v
      (Cmd.info "verify"
         ~doc:"materialize every stored version against its committed hash"
         ~exits)
      Term.(const run_store_verify $ archive $ store_jobs);
  ]

let store_cmd =
  let doc = "delta-chain version archives and sharded document corpora" in
  let man =
    [
      `S Manpage.s_description;
      `P "An archive stores a document's history as a base snapshot plus a \
          chain of forward edit scripts, with periodic full-snapshot \
          checkpoints so $(b,materialize) costs O(distance to the nearest \
          checkpoint).  Every commit is re-verified by the static checker \
          before it is written, and each record is checksummed so an \
          interrupted commit is isolated on reopen rather than corrupting \
          the history.";
      `P "$(b,store init --shards N) creates a $(i,corpus): a directory of N \
          hash-bucketed shard files fronted by a checksummed write-ahead \
          manifest, holding many documents' chains.  Commits are atomic \
          across documents (a crash loses at most the in-flight commit, and \
          reopen needs no repair step), $(b,ingest) bulk-loads and resumes \
          deterministically, and the per-document verbs take $(b,--doc).";
    ]
  in
  Cmd.group (Cmd.info "store" ~doc ~man) store_cmds

(* ----------------------------------------------------------------- serve *)

module Server = Treediff_serve.Server
module Client = Treediff_serve.Client
module Sjson = Treediff_serve.Json
module Sproto = Treediff_serve.Protocol

let run_serve host port stdio max_queue degrade_queue flat_queue
    default_deadline_ms max_deadline_ms cache_entries allow_crash =
  handle_errors @@ fun () ->
  let config =
    {
      Server.default_config with
      Server.host;
      port;
      max_queue;
      degrade_queue;
      flat_queue;
      default_deadline_ms;
      max_deadline_ms;
      cache_entries;
      allow_crash;
    }
  in
  if stdio then Server.serve_stdio ~config stdin stdout
  else
    Server.run ~config
      ~on_listen:(fun p -> Printf.printf "listening on %s:%d\n%!" host p)
      ()

let serve_host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Address to bind (serve) or connect to (remote).")

let serve_port =
  Arg.(value & opt int 7433 & info [ "port" ] ~docv:"PORT"
         ~doc:"TCP port; $(b,0) binds an ephemeral port and prints it.")

let serve_stdio_flag =
  Arg.(value & flag & info [ "stdio" ]
         ~doc:"Serve frames on stdin/stdout instead of TCP (one request at \
               a time, no admission control); used by the tests.")

let serve_max_queue =
  Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N"
         ~doc:"Admission bound: requests beyond a queue depth of $(docv) \
               are rejected with a typed $(b,overloaded) answer.")

let serve_degrade_queue =
  Arg.(value & opt int 8 & info [ "degrade-queue" ] ~docv:"N"
         ~doc:"Queue depth at which diff requests are forced onto the \
               cheap approx rung.")

let serve_flat_queue =
  Arg.(value & opt int 32 & info [ "flat-queue" ] ~docv:"N"
         ~doc:"Queue depth at which structural diffing is bypassed for the \
               flat line diff.")

let serve_default_deadline =
  Arg.(value & opt float 1000. & info [ "default-deadline-ms" ] ~docv:"MS"
         ~doc:"Per-request deadline when the client does not ask for one.")

let serve_max_deadline =
  Arg.(value & opt float 5000. & info [ "max-deadline-ms" ] ~docv:"MS"
         ~doc:"Server-enforced cap on client-requested deadlines.")

let serve_cache_entries =
  Arg.(value & opt int 256 & info [ "cache-entries" ] ~docv:"N"
         ~doc:"LRU result-cache capacity, keyed by the structural hash of \
               the input pair; $(b,0) disables the cache.")

let serve_allow_crash =
  Arg.(value & flag & info [ "allow-crash" ]
         ~doc:"Enable the debug $(b,crash) verb (a handler that raises), \
               used by the crash-isolation tests.")

let serve_cmd =
  let doc = "run the diff daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P "A long-running server answering diff/batch/check/store requests \
          over length-prefixed JSON frames.  Each request runs in its own \
          execution context under its own deadline; queue pressure degrades \
          service (full pipeline, then forced approx rung, then flat line \
          diffs) before rejecting with typed $(b,overloaded) answers; a \
          request that crashes is answered with a typed $(b,internal) error \
          while the server keeps serving.  SIGINT/SIGTERM drain the queue, \
          flush, and exit 0.";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const run_serve $ serve_host $ serve_port $ serve_stdio_flag
          $ serve_max_queue $ serve_degrade_queue $ serve_flat_queue
          $ serve_default_deadline $ serve_max_deadline $ serve_cache_entries
          $ serve_allow_crash)

(* ---------------------------------------------------------------- remote *)

let remote_exit_of_kind = function
  | Sproto.Bad_request -> exit_parse_error
  | Sproto.Deadline -> exit_degraded
  | Sproto.Internal -> exit_internal
  | Sproto.Overloaded | Sproto.Shutting_down -> 1

let run_remote verb old_file new_file host port mode deadline_ms approx
    params_json attempts base_ms max_ms seed verbose retry_unsafe output =
  handle_errors @@ fun () ->
  let base =
    (match old_file with
    | Some f -> [ ("old", Sjson.Str (read_file f)) ]
    | None -> [])
    @ (match new_file with
      | Some f -> [ ("new", Sjson.Str (read_file f)) ]
      | None -> [])
    @ [ ("mode", Sjson.Str mode) ]
    @ (match deadline_ms with
      | Some ms -> [ ("deadline_ms", Sjson.Num ms) ]
      | None -> [])
    @ if approx then [ ("approx", Sjson.Bool true) ] else []
  in
  let extra =
    match params_json with
    | None -> []
    | Some s -> (
      match Sjson.parse s with
      | Ok (Sjson.Obj kvs) -> kvs
      | Ok _ ->
        Printf.eprintf "treediff: remote: --params must be a JSON object\n";
        exit exit_parse_error
      | Error e ->
        Printf.eprintf "treediff: remote: --params: %s\n" e;
        exit exit_parse_error)
  in
  (* --params wins over the derived fields *)
  let params =
    Sjson.Obj
      (List.filter (fun (k, _) -> not (List.mem_assoc k extra)) base @ extra)
  in
  let req = { Sproto.id = 1; verb; params } in
  let on_attempt (a : Client.attempt) =
    if verbose then
      Printf.eprintf "treediff: remote: attempt %d failed (%s); retrying in %.0fms\n%!"
        a.Client.number a.Client.reason a.Client.delay_ms
  in
  match
    Client.call_with_retry ~attempts ~base_ms ~max_ms ~on_attempt
      ~retry_unsafe
      ~prng:(Treediff_util.Prng.create seed)
      ~connect:(fun () -> Client.connect ~host ~port)
      req
  with
  | Error msg ->
    Printf.eprintf "treediff: remote: %s\n" msg;
    exit 1
  | Ok (Sproto.Err_resp { kind; message; _ }) ->
    Printf.eprintf "treediff: remote: %s: %s\n" (Sproto.error_kind_name kind)
      message;
    exit (remote_exit_of_kind kind)
  | Ok (Sproto.Ok_resp body) ->
    (match Sjson.mem_str "output" body with
    | Some s -> write_out output s
    | None -> write_out output (Sjson.to_string body ^ "\n"));
    (match Sjson.member "degraded" body with
    | Some (Sjson.Str _) -> exit exit_degraded
    | Some _ | None -> ())

let remote_verb =
  Arg.(value & pos 0 string "diff" & info [] ~docv:"VERB"
         ~doc:"Request verb: $(b,ping), $(b,stats), $(b,diff), $(b,check), \
               $(b,batch), $(b,store/log), $(b,store/materialize), \
               $(b,store/commit), $(b,store/diff) or $(b,shutdown).")

let remote_old =
  Arg.(value & pos 1 (some file) None & info [] ~docv:"OLD"
         ~doc:"Old tree file (diff/check).")

let remote_new =
  Arg.(value & pos 2 (some file) None & info [] ~docv:"NEW"
         ~doc:"New tree file (diff/check).")

let remote_deadline =
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Deadline requested from the server (it may cap it; queueing \
               time counts against it).")

let remote_params =
  Arg.(value & opt (some string) None & info [ "params" ] ~docv:"JSON"
         ~doc:"Extra request parameters as a JSON object, merged over the \
               derived ones (e.g. \
               $(b,'{\"archive\":\"docs.tda\",\"version\":3}') for store \
               verbs).")

let remote_attempts =
  Arg.(value & opt int 5 & info [ "attempts" ] ~docv:"N"
         ~doc:"Total tries on $(b,overloaded)/$(b,shutting_down) answers \
               and connection errors.")

let remote_base_ms =
  Arg.(value & opt float 25. & info [ "base-ms" ] ~docv:"MS"
         ~doc:"Base backoff delay; attempt $(i,i) waits up to \
               base * 2^i with jitter.")

let remote_max_ms =
  Arg.(value & opt float 1600. & info [ "max-ms" ] ~docv:"MS"
         ~doc:"Backoff delay cap.")

let remote_seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
         ~doc:"PRNG seed for backoff jitter: the retry schedule is a pure \
               function of this seed.")

let remote_verbose =
  Arg.(value & flag & info [ "v"; "verbose" ]
         ~doc:"Report each retry decision on stderr.")

let remote_retry_unsafe =
  Arg.(value & flag & info [ "retry-unsafe" ]
         ~doc:"Also retry connection errors that happen $(i,after) a \
               non-idempotent request ($(b,store/commit), $(b,shutdown)) \
               was sent.  Off by default: the server may already have \
               executed the request, so a blind retry risks a duplicate \
               commit.  Typed $(b,overloaded)/$(b,shutting_down) answers \
               are always retried — the server refused without executing.")

let remote_cmd =
  let doc = "send one request to a running diff daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P "Connects to $(b,treediff serve), sends one framed request, prints \
          the answer.  Typed $(b,overloaded) and $(b,shutting_down) answers \
          and connection failures are retried with exponential backoff and \
          seeded jitter (honouring the server's $(b,retry_after_ms) hint); \
          a connection that drops after a non-idempotent request was sent \
          is not retried unless $(b,--retry-unsafe) is given.  Other errors \
          map to the same exit codes as the local subcommands.";
    ]
  in
  let exits =
    exit_parse_info
    :: Cmd.Exit.info
         ~doc:"when the server answered $(b,deadline) or the result was \
               degraded." exit_degraded
    :: exit_internal_info
    :: Cmd.Exit.info
         ~doc:"on connection failure or an $(b,overloaded) answer that \
               survived all retries." 1
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "remote" ~doc ~man ~exits)
    Term.(const run_remote $ remote_verb $ remote_old $ remote_new
          $ serve_host $ serve_port $ mode $ remote_deadline $ approx
          $ remote_params $ remote_attempts $ remote_base_ms $ remote_max_ms
          $ remote_seed $ remote_verbose $ remote_retry_unsafe $ output)

(* ------------------------------------------------------------------ main *)

let cmd =
  let doc = "minimum-cost edit scripts between labeled ordered trees" in
  let man =
    [
      `S Manpage.s_description;
      `P "Trees use the s-expression codec, e.g. \
          (D (P (S \"a\") (S \"b\")) (P (S \"c\"))).  The algorithms are those \
          of Chawathe, Rajaraman, Garcia-Molina & Widom (SIGMOD 1996).";
    ]
  in
  Cmd.group (Cmd.info "treediff" ~version:"1.0.0" ~doc ~man)
    [ diff_cmd; batch_cmd; apply_cmd; check_cmd; store_cmd; serve_cmd;
      remote_cmd ]

(* A closed downstream ([treediff batch … | head]) is a normal way to stop
   consuming output, not a failure: SIGPIPE is ignored so the write surfaces
   as EPIPE / [Sys_error "Broken pipe"], which maps to a clean exit 0. *)
let broken_pipe = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error m ->
    let needle = "Broken pipe" in
    let n = String.length m and nl = String.length needle in
    let rec scan i = i + nl <= n && (String.sub m i nl = needle || scan (i + 1)) in
    scan 0
  | _ -> false

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Cmd.eval ~catch:false cmd with
  | code -> exit code
  | exception e when broken_pipe e -> exit 0
