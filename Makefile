.PHONY: all build lint check test bench bench-quick doc clean examples

all: build

build:
	dune build @all

lint:
	dune build @lint

# Static gate: build everything (check layer is warnings-as-errors), then run
# the verifier end-to-end over every example pair.
check: lint
	@for p in examples/pairs/*.old.sexp; do \
	  echo "== treediff check $$p"; \
	  dune exec bin/treediff_cli.exe -- check "$$p" "$${p%.old.sexp}.new.sexp" || exit 1; \
	done

# The suite runs with the always-on sanitizer enabled: every Diff.diff in any
# test raises on error-severity findings.
test:
	TREEDIFF_CHECK=1 dune runtest

test-force:
	TREEDIFF_CHECK=1 dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-timing:
	dune exec bench/main.exe -- --bechamel

examples:
	dune exec examples/quickstart.exe
	dune exec examples/document_diff.exe
	dune exec examples/config_management.exe
	dune exec examples/web_monitor.exe
	dune exec examples/ast_diff.exe
	dune exec examples/active_rules.exe

clean:
	dune clean
