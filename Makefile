.PHONY: all build lint check test bench bench-quick doc clean examples fault-tests store-tests par-tests bench-parallel sim-tests bench-sim bench-compare analyze-tests bench-check serve-tests bench-serve bench-store bench-store-scale ci ci-bench-compare ci-serve-compare ci-store-scale-compare

all: build

build:
	dune build @all

lint:
	dune build @lint

# Static gate: build everything (check layer is warnings-as-errors), then run
# the verifier end-to-end over every example pair.
check: lint
	@for p in examples/pairs/*.old.*; do \
	  ext=$${p##*.}; \
	  case "$$ext" in \
	    sexp) fmt=sexp ;; json) fmt=json ;; md) fmt=markdown ;; \
	    xml) fmt=xml ;; tex) fmt=latex ;; html) fmt=html ;; \
	    *) continue ;; \
	  esac; \
	  echo "== treediff check -f $$fmt $$p"; \
	  dune exec bin/treediff_cli.exe -- check -f "$$fmt" "$$p" "$${p%.old.$$ext}.new.$$ext" || exit 1; \
	done

# The suite runs with the always-on sanitizer enabled: every Diff.diff in any
# test raises on error-severity findings.
test:
	TREEDIFF_CHECK=1 dune runtest

test-force:
	TREEDIFF_CHECK=1 dune runtest --force --no-buffer

# Fault-injection sweep: run the resilience suite unarmed, then re-run it
# with TREEDIFF_FAULT armed at representative points (the suite switches to
# its env-sweep mode and asserts every outcome is a verified result or a
# typed error — never an uncaught exception).
FAULT_SPECS = \
  fast_match.chain:raise \
  fast_match.lcs:deadline \
  fast_match.sim:raise \
  simple_match.node:overflow \
  keyed.match:raise \
  sim.greedy:raise \
  postprocess.run:raise \
  postprocess.scan:deadline \
  edit_gen.visit:raise \
  edit_gen.align:deadline \
  edit_gen.delete:overflow \
  delta.build:raise \
  fast_match.chain:raise,keyed.match:raise

fault-tests:
	dune build test/test_fault.exe
	dune exec test/test_fault.exe -- -c
	@for spec in $(FAULT_SPECS); do \
	  echo "== TREEDIFF_FAULT=$$spec"; \
	  TREEDIFF_FAULT=$$spec dune exec test/test_fault.exe -- -c || exit 1; \
	done

# Version-store suite: algebra properties, archive round-trips and the CLI
# unarmed, then the crash sweep — with TREEDIFF_FAULT armed at the store's
# points, the suite switches to env-sweep mode: commit under fire, reopen,
# and verify every surviving version against its stored hash.  The corpus
# suite (test_corpus) runs the same sweep against the sharded store, where
# the armed points additionally cover the write-ahead manifest and the
# per-shard commit locks.
STORE_FAULT_SPECS = \
  store.commit:raise@3 \
  store.append:raise@2 \
  store.append:deadline@2 \
  store.replay:raise@4 \
  store.manifest:raise@2 \
  store.manifest:deadline@2 \
  store.shard_lock:raise@2

store-tests:
	dune build test/test_store.exe test/test_corpus.exe bin/treediff_cli.exe
	dune exec test/test_store.exe -- -c
	dune exec test/test_corpus.exe -- -c
	@for spec in $(STORE_FAULT_SPECS); do \
	  echo "== TREEDIFF_FAULT=$$spec"; \
	  TREEDIFF_FAULT=$$spec dune exec test/test_store.exe -- -c || exit 1; \
	  TREEDIFF_FAULT=$$spec dune exec test/test_corpus.exe -- -c || exit 1; \
	done

# Parallelism suite: pool unit tests, the jobs:1 vs jobs:4 byte-identity
# property (with per-pair budgets and armed faults), crash isolation, and
# parallel store replay.
par-tests:
	dune build test/test_batch.exe
	dune exec test/test_batch.exe -- -c

# Similarity-layer suite: SimHash/LSH unit tests, the prefilter recall and
# budget-charge properties, the approx ladder rung (via the fault suite's
# ladder cases) and jobs-parity with the prefilter engaged.
sim-tests:
	dune build test/test_matching.exe test/test_batch.exe test/test_fault.exe
	dune exec test/test_matching.exe -- test similarity -c
	dune exec test/test_batch.exe -- test batch -c
	dune exec test/test_fault.exe -- test ladder -c

# Interference-analyzer suite (TD5xx/TD6xx): dependence-graph pair
# classification, the canonical-form and parallel-apply properties, and the
# minimality oracle's agreement with Edit_gen on tiny pairs — plus the
# analyzer's two fault points, armed via the environment.
analyze-tests:
	dune build test/test_analyze.exe test/test_fault.exe
	dune exec test/test_analyze.exe -- -c
	@for spec in check.depgraph:raise check.oracle:raise; do \
	  echo "== TREEDIFF_FAULT=$$spec"; \
	  TREEDIFF_FAULT=$$spec dune exec test/test_fault.exe -- -c || exit 1; \
	done

# Service-layer suite: protocol codec properties, admission/deadline/crash
# paths, drain-on-signal and backoff determinism unarmed, then the sweep —
# with TREEDIFF_FAULT armed at the serve.* points the suite switches to its
# env-sweep mode: hammer a live daemon under fire and assert every outcome
# is a typed answer or a clean transport error, never a hang or an uncaught
# exception.
SERVE_FAULT_SPECS = \
  serve.accept:raise@2 \
  serve.decode:raise@2 \
  serve.cache:raise \
  serve.drain:raise

serve-tests:
	dune build test/test_serve.exe bin/treediff_cli.exe
	dune exec test/test_serve.exe -- -c
	@for spec in $(SERVE_FAULT_SPECS); do \
	  echo "== TREEDIFF_FAULT=$$spec"; \
	  TREEDIFF_FAULT=$$spec dune exec test/test_serve.exe -- -c || exit 1; \
	done

bench:
	dune exec bench/main.exe

bench-store:
	dune exec bench/main.exe -- store

# Sharded corpus store at scale: the committed BENCH_store_scale.json
# trajectory is the full synthetic corpus (10k docs x 100 versions = 1M),
# measuring commits/s, bytes/version, cold-cache materialize p99 and ingest
# scaling across jobs with a byte-identity check.  Takes a few minutes.
bench-store-scale:
	dune exec bench/main.exe -- store-scale --json BENCH_store_scale.json

# Domain-parallel batch diffing over the fig13 corpora at jobs 1/2/4, with a
# cross-jobs output-identity check; writes BENCH_parallel.json.  Speedup
# tracks the core count of the host (a 1-core container stays around 1x).
bench-parallel:
	dune exec bench/main.exe -- batch --json BENCH_parallel.json

# Similarity layer: exact FastMatch vs the LSH prefilter vs the greedy
# approx matcher on the adversarial long-chain corpus, plus precision /
# recall over every corpus; writes BENCH_sim.json.
bench-sim:
	dune exec bench/main.exe -- sim --json BENCH_sim.json

# Gate on a benchmark trajectory: compare two BENCH_*.json files by shared
# benchmark name and fail on >10% ns/run regressions, e.g.
#   make bench-compare OLD=BENCH_sim.json NEW=BENCH_sim_new.json
OLD = BENCH_baseline.json
NEW = BENCH_indexed.json
MAX_REGRESS = 10
bench-compare:
	tools/bench_compare.sh $(OLD) $(NEW) --max-regress $(MAX_REGRESS)

# Interference analyzer ns/op, the minimality oracle's node-budget cost
# curve, and oracle-audited minimality rates; writes BENCH_check.json (the
# committed trajectory behind EXPERIMENTS.md's minimality table).
bench-check:
	dune exec bench/main.exe -- check --json BENCH_check.json

# Open-loop load against an in-process daemon at 0.5x/1x/2x the calibrated
# saturation rate, a strict-admission overload probe, and a crash-isolation
# segment; writes BENCH_serve.json (the committed record that at 2x the
# daemon answers with typed `overloaded` and p99 stays inside the deadline).
bench-serve:
	dune exec bench/main.exe -- serve --json BENCH_serve.json

bench-timing:
	dune exec bench/main.exe -- --bechamel

# Full local CI umbrella: build + the whole suite under the sanitizer +
# lint + every fault sweep + a bench trajectory gate against the committed
# BENCH_check.json.  The bench gate re-measures on this host, so the
# regression threshold is generous — it catches complexity cliffs, not
# noise.
ci: build test lint fault-tests store-tests par-tests sim-tests analyze-tests serve-tests ci-bench-compare ci-serve-compare ci-store-scale-compare
	@echo "ci: all gates passed"

ci-bench-compare:
	dune exec bench/main.exe -- check --json $(or $(TMPDIR),/tmp)/BENCH_check_ci.json
	tools/bench_compare.sh BENCH_check.json $(or $(TMPDIR),/tmp)/BENCH_check_ci.json --max-regress 100

# The store-scale gate re-runs the smoke corpus (100 docs; the committed
# trajectory is the full 1M-version run) and compares the store_scale/ rows
# only.  CI re-measures on an arbitrary host AND a 100x smaller corpus, so
# the threshold is deliberately loose: it exists to catch complexity
# cliffs in the commit/materialize paths and any loss of the cross-jobs
# byte-identity property (which fails the bench outright), not noise.
STORE_SCALE_MAX_REGRESS = 400
ci-store-scale-compare:
	dune exec bench/main.exe -- store-scale --smoke --json $(or $(TMPDIR),/tmp)/BENCH_store_scale_ci.json
	tools/bench_compare.sh BENCH_store_scale.json $(or $(TMPDIR),/tmp)/BENCH_store_scale_ci.json --only 'store_scale/(commit-mean|ingest-jobs-)' --max-regress $(STORE_SCALE_MAX_REGRESS)

# The serve gate re-runs the load generator and compares tail latency only
# (--only 'serve/.*-p99'): p50/throughput rows are dominated by scheduler
# noise under open-loop load, p99 is what the deadline promise is about.
# Same-host trajectory comparisons use SERVE_MAX_REGRESS=10; CI re-measures
# on whatever host it lands on, so the in-tree default stays generous.
SERVE_MAX_REGRESS = 100
ci-serve-compare:
	dune exec bench/main.exe -- serve --json $(or $(TMPDIR),/tmp)/BENCH_serve_ci.json
	tools/bench_compare.sh BENCH_serve.json $(or $(TMPDIR),/tmp)/BENCH_serve_ci.json --only 'serve/.*-p99' --max-regress $(SERVE_MAX_REGRESS)

examples:
	dune exec examples/quickstart.exe
	dune exec examples/document_diff.exe
	dune exec examples/config_management.exe
	dune exec examples/web_monitor.exe
	dune exec examples/ast_diff.exe
	dune exec examples/active_rules.exe

clean:
	dune clean
