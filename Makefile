.PHONY: all build test bench bench-quick doc clean examples

all: build

build:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-timing:
	dune exec bench/main.exe -- --bechamel

examples:
	dune exec examples/quickstart.exe
	dune exec examples/document_diff.exe
	dune exec examples/config_management.exe
	dune exec examples/web_monitor.exe
	dune exec examples/ast_diff.exe
	dune exec examples/active_rules.exe

clean:
	dune clean
